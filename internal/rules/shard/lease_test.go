package shard

import (
	"errors"
	"testing"

	"calsys/internal/rules"
)

// TestLeaseTTLBoundary pins the expiry arithmetic exactly at the heartbeat
// boundary: a lease granted at 0 with ttl=100 is valid through 99 and dead
// at 100 — renewing or validating AT the expiry instant is too late.
func TestLeaseTTLBoundary(t *testing.T) {
	c := NewCoordinator(1, 100)
	got, err := c.Acquire("w1", 0, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("Acquire = %v, %v; want one lease", got, err)
	}
	if got[0].ExpiresAt != 100 {
		t.Fatalf("ExpiresAt = %d, want 100", got[0].ExpiresAt)
	}

	// One second before expiry: renewal succeeds and extends to now+ttl.
	kept, lost, err := c.Renew("w1", 99)
	if err != nil || len(kept) != 1 || len(lost) != 0 {
		t.Fatalf("Renew at 99 = kept %v lost %v err %v; want kept", kept, lost, err)
	}
	if kept[0].ExpiresAt != 199 {
		t.Fatalf("renewed ExpiresAt = %d, want 199", kept[0].ExpiresAt)
	}

	// Validate one second before the new expiry: still the owner.
	if err := c.Validate(0, kept[0].Epoch, 198); err != nil {
		t.Fatalf("Validate at 198: %v, want ok", err)
	}
	// Validate exactly at expiry: fenced, even though nobody stole yet.
	if err := c.Validate(0, kept[0].Epoch, 199); !errors.Is(err, rules.ErrFenced) {
		t.Fatalf("Validate at 199 = %v, want ErrFenced", err)
	}

	// Renew exactly at expiry: the lease is lost, not revived.
	kept, lost, err = c.Renew("w1", 199)
	if err != nil || len(kept) != 0 || len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("Renew at 199 = kept %v lost %v err %v; want lost=[0]", kept, lost, err)
	}

	// A peer acquiring at the same instant steals it under a fresh epoch.
	stolen, err := c.Acquire("w2", 199, 1)
	if err != nil || len(stolen) != 1 {
		t.Fatalf("steal Acquire = %v, %v", stolen, err)
	}
	if stolen[0].Epoch <= kept0Epoch(got) {
		t.Fatalf("steal epoch %d not past original %d", stolen[0].Epoch, got[0].Epoch)
	}
	if st := c.Stats(); st.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", st.Steals)
	}
	// The original epoch stays fenced forever.
	if err := c.Validate(0, got[0].Epoch, 200); !errors.Is(err, rules.ErrFenced) {
		t.Fatalf("old-epoch Validate = %v, want ErrFenced", err)
	}
	if err := c.Validate(0, stolen[0].Epoch, 200); err != nil {
		t.Fatalf("new-epoch Validate = %v, want ok", err)
	}
}

func kept0Epoch(ls []Lease) uint64 { return ls[0].Epoch }

// TestLeaseReleaseFencing: only the (worker, epoch) pair of the current
// grant may release; a zombie's stale epoch gets ErrNotOwner.
func TestLeaseReleaseFencing(t *testing.T) {
	c := NewCoordinator(1, 100)
	l1, _ := c.Acquire("w1", 0, 1)
	// Lease expires, w2 steals.
	l2, _ := c.Acquire("w2", 100, 1)
	if len(l2) != 1 {
		t.Fatalf("steal failed: %v", l2)
	}
	if err := c.Release("w1", 0, l1[0].Epoch); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("zombie Release = %v, want ErrNotOwner", err)
	}
	if err := c.Release("w2", 0, l1[0].Epoch); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale-epoch Release = %v, want ErrNotOwner", err)
	}
	if err := c.Release("w2", 0, l2[0].Epoch); err != nil {
		t.Fatalf("owner Release = %v, want ok", err)
	}
	if _, owned := c.Owner(0); owned {
		t.Fatal("shard still owned after release")
	}
	if err := c.Release("w2", 5, l2[0].Epoch); err == nil {
		t.Fatal("Release of out-of-range shard succeeded")
	}
}

// TestFairShareMath: quota is ceil(shards/live) over workers whose liveness
// deadline has not passed; a fleet with zero live workers divides by one.
func TestFairShareMath(t *testing.T) {
	c := NewCoordinator(10, 100)
	if fs := c.FairShare(0); fs != 10 {
		t.Fatalf("FairShare with no workers = %d, want 10", fs)
	}
	c.Heartbeat("a", 0)
	c.Heartbeat("b", 0)
	c.Heartbeat("c", 0)
	if lw := c.LiveWorkers(50); lw != 3 {
		t.Fatalf("LiveWorkers = %d, want 3", lw)
	}
	if fs := c.FairShare(50); fs != 4 { // ceil(10/3)
		t.Fatalf("FairShare(3 live) = %d, want 4", fs)
	}
	// Liveness lapses at exactly now == deadline (now < deadline is live).
	if lw := c.LiveWorkers(100); lw != 0 {
		t.Fatalf("LiveWorkers at deadline = %d, want 0", lw)
	}
	c.Heartbeat("a", 100)
	if fs := c.FairShare(101); fs != 10 {
		t.Fatalf("FairShare(1 live) = %d, want 10", fs)
	}
}

// TestAcquireScanOrder: grants scan shards from 0, skip valid leases, and
// respect max.
func TestAcquireScanOrder(t *testing.T) {
	c := NewCoordinator(4, 100)
	a, _ := c.Acquire("w1", 0, 2)
	if len(a) != 2 || a[0].Shard != 0 || a[1].Shard != 1 {
		t.Fatalf("Acquire = %v, want shards 0,1", a)
	}
	b, _ := c.Acquire("w2", 10, 10)
	if len(b) != 2 || b[0].Shard != 2 || b[1].Shard != 3 {
		t.Fatalf("second Acquire = %v, want shards 2,3", b)
	}
	none, _ := c.Acquire("w3", 20, 10)
	if len(none) != 0 {
		t.Fatalf("third Acquire = %v, want none (all leased)", none)
	}
	if st := c.Stats(); st.Grants != 4 || st.Steals != 0 {
		t.Fatalf("stats = %+v, want 4 grants 0 steals", st)
	}
}
