// Package shard partitions a temporal-rule fleet across multiple dbcrond
// workers. Rules are hash-partitioned by name (rules.ShardOf) into N shards;
// a lease Coordinator hands each shard to exactly one worker at a time under
// a TTL'd, heartbeat-renewed, epoch-fenced lease. Each owned shard runs its
// own DBCron over its own per-epoch firing journal; when a worker crashes
// its leases expire and peers steal them, merging the dead worker's journal
// files and recovering with the PR 4 machinery — exactly-once firings under
// the FireAll policy survive any worker kill.
//
// Epoch fencing is the safety invariant: every lease grant increments a
// coordinator-wide epoch, the epoch is checked inside every firing
// transaction (CronOptions.Fence), and a zombie worker holding a stale
// epoch aborts with rules.ErrFenced before committing anything.
package shard

// Fault-injection sites in the coordination layer. The chaos matrix crashes
// workers at each of these (on top of the PR 4 probe/fire/ack/journal sites)
// to prove the invariant across kills during lease traffic and handoff.
const (
	// SiteAcquire is hit before a free shard is granted.
	SiteAcquire = "lease.acquire"
	// SiteRenew is hit at the top of a heartbeat renewal — a crash here
	// lets every lease of the worker lapse into the steal window.
	SiteRenew = "lease.renew"
	// SiteSteal is hit before an expired lease is re-granted to a new
	// owner — a crash here kills the stealing worker mid-takeover.
	SiteSteal = "lease.steal"
	// SiteRelease is hit before a voluntary release (rebalance or graceful
	// shutdown) — a crash here leaves the lease to expire instead.
	SiteRelease = "lease.release"
	// SiteHandoff is hit at the start of shard adoption, before the new
	// owner merges the prior epochs' journals.
	SiteHandoff = "shard.handoff"
)
