package shard

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"calsys/internal/faultinject"
	"calsys/internal/rules"
	"calsys/internal/rules/journal"
)

// Options configures a Worker's per-shard daemons.
type Options struct {
	// Retry/CatchUp/ActionTimeout/MaxCatchUp/Seed are the per-shard
	// CronOptions template (see rules.CronOptions).
	Retry         rules.RetryPolicy
	CatchUp       rules.CatchUpPolicy
	ActionTimeout time.Duration
	MaxCatchUp    int
	Seed          int64
	// Faults threads the chaos injector through handoff and the per-shard
	// daemons/journals (the coordinator carries its own via SetFaults).
	Faults *faultinject.Injector
	// SyncJournals enables fsync-on-commit on the per-shard journals
	// (production on, virtual-time tests off for speed).
	SyncJournals bool
	// HeartbeatEvery is the wall seconds between Run's ticks (default
	// TTL/3, min 1). Step-driven tests call Tick directly instead.
	HeartbeatEvery int64
}

// WorkerStats is a worker's lifetime counter snapshot.
type WorkerStats struct {
	Owned    int   // shards currently owned
	Adopted  int64 // shards adopted (initial grant, rebalance or steal)
	Released int64 // shards released voluntarily (rebalance/shutdown)
	Lost     int64 // leases that expired or were rejected under us
	Fenced   int64 // shards dropped after a fenced firing attempt
	Fired    int64 // firings committed across all epochs owned
}

// ownedShard is one shard a worker holds: its lease, its per-epoch journal
// and the per-shard daemon probing only that shard's rules.
type ownedShard struct {
	lease Lease
	cron  *rules.DBCron
	jnl   *journal.Journal
}

// Worker is one dbcrond process of a sharded fleet. It heartbeats the
// Coordinator, acquires shards up to its fair share (stealing expired
// leases of crashed peers), releases down to it when peers join, and drives
// one DBCron per owned shard. Tick is the step-driven core (virtual-time
// tests and the demo); Run wraps it for wall-clock operation.
type Worker struct {
	name  string
	coord *Coordinator
	eng   *rules.Engine
	T     int64
	dir   string
	opts  Options

	mu    sync.Mutex
	owned map[int]*ownedShard
	stats WorkerStats
}

// New creates a worker named `name` over the shared engine. Per-shard
// journals are created under dir; T is the probe period in seconds.
func New(name string, coord *Coordinator, eng *rules.Engine, T int64, dir string, opts Options) *Worker {
	if opts.Retry.MaxAttempts <= 0 {
		opts.Retry = rules.DefaultRetryPolicy
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = coord.TTL() / 3
	}
	if opts.HeartbeatEvery < 1 {
		opts.HeartbeatEvery = 1
	}
	return &Worker{name: name, coord: coord, eng: eng, T: T, dir: dir, opts: opts, owned: map[int]*ownedShard{}}
}

// Name returns the worker's fleet-unique name.
func (w *Worker) Name() string { return w.name }

// Tick is one scheduling round at `now`: renew leases (dropping any lost to
// expiry), rebalance down to the fair share, acquire free or expired shards
// up to it (adopting each one's journal state), then advance every owned
// daemon to now. A returned injected-crash error means the worker died at a
// chaos site; the harness must abandon it without cleanup, exactly like a
// SIGKILL.
func (w *Worker) Tick(now int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	kept, lost, err := w.coord.Renew(w.name, now)
	if err != nil {
		return err
	}
	for _, l := range kept {
		if os, ok := w.owned[l.Shard]; ok {
			os.lease = l
		}
	}
	for _, sh := range lost {
		w.dropLocked(sh)
		w.stats.Lost++
	}

	fair := w.coord.FairShare(now)
	for len(w.owned) > fair {
		// Shed the highest shard id: deterministic, and symmetric with
		// Acquire scanning from 0.
		sh := -1
		for id := range w.owned {
			if id > sh {
				sh = id
			}
		}
		if err := w.releaseLocked(sh, now); err != nil {
			return err
		}
	}

	if len(w.owned) < fair {
		leases, aerr := w.coord.Acquire(w.name, now, fair-len(w.owned))
		for _, l := range leases {
			if err := w.adoptLocked(l, now); err != nil {
				return err
			}
		}
		if aerr != nil {
			return aerr
		}
	}

	for _, sh := range w.ownedIDsLocked() {
		os, ok := w.owned[sh]
		if !ok {
			continue
		}
		if _, err := os.cron.AdvanceTo(now); err != nil {
			if errors.Is(err, rules.ErrFenced) {
				// We are a zombie for this shard: the fence already
				// blocked the commit; drop our state and move on.
				w.stats.Fenced++
				w.dropLocked(sh)
				continue
			}
			return err
		}
	}
	return nil
}

// adoptLocked takes ownership of a freshly granted shard: merge every
// journal file prior epochs left behind, open this epoch's journal, seed it
// with the merged high-waters, recover (re-firing or deduplicating the dead
// owner's in-flight work per the catch-up policy), then delete the
// superseded files. Idempotent under crashes at any point: files are only
// deleted after the new epoch journal holds everything they proved.
func (w *Worker) adoptLocked(l Lease, now int64) error {
	if err := faultinject.Hit(w.opts.Faults, SiteHandoff); err != nil {
		return err
	}
	newPath := journal.ShardFile(w.dir, l.Shard, l.Epoch)
	old, err := journal.ShardFiles(w.dir, l.Shard)
	if err != nil {
		return err
	}
	var states []*journal.State
	for _, p := range old {
		if p == newPath {
			continue
		}
		st, err := journal.ReplayFile(p)
		if err != nil {
			return err
		}
		states = append(states, st)
	}
	merged := journal.MergeStates(states...)
	jnl, err := journal.Open(newPath, journal.WithSync(w.opts.SyncJournals), journal.WithFaults(w.opts.Faults))
	if err != nil {
		return err
	}
	sh, epoch := l.Shard, l.Epoch
	cron, err := rules.NewDBCronWith(w.eng, w.T, now, rules.CronOptions{
		Journal:       jnl,
		Retry:         w.opts.Retry,
		CatchUp:       w.opts.CatchUp,
		ActionTimeout: w.opts.ActionTimeout,
		MaxCatchUp:    w.opts.MaxCatchUp,
		Seed:          w.opts.Seed + int64(epoch),
		Faults:        w.opts.Faults,
		Shard:         sh,
		Shards:        w.coord.Shards(),
		Fence:         func(at int64) error { return w.coord.Validate(sh, epoch, at) },
	})
	if err != nil {
		jnl.Close()
		return err
	}
	if _, err := cron.AdoptState(now, merged); err != nil {
		if errors.Is(err, rules.ErrFenced) {
			// Lease lost while adopting (e.g. the clock jumped past the
			// TTL mid-recovery): walk away, the next owner re-merges.
			cron.Close()
			jnl.Close()
			w.stats.Fenced++
			return nil
		}
		cron.Close()
		return err
	}
	for _, p := range old {
		if p != newPath {
			os.Remove(p)
		}
	}
	w.owned[sh] = &ownedShard{lease: l, cron: cron, jnl: jnl}
	w.stats.Adopted++
	return nil
}

// releaseLocked gracefully hands a shard back: drain due work, compact the
// journal so the next owner merges a minimal file, release the lease, close.
// No steal window opens — the lease is immediately free.
func (w *Worker) releaseLocked(sh int, now int64) error {
	os, ok := w.owned[sh]
	if !ok {
		return fmt.Errorf("shard: worker %s does not own shard %d", w.name, sh)
	}
	if _, err := os.cron.AdvanceTo(now); err != nil {
		if errors.Is(err, rules.ErrFenced) {
			w.stats.Fenced++
			w.dropLocked(sh)
			return nil
		}
		return err
	}
	if err := os.jnl.Compact(); err != nil {
		return err
	}
	if err := w.coord.Release(w.name, sh, os.lease.Epoch); err != nil {
		if errors.Is(err, ErrNotOwner) {
			w.stats.Lost++
			w.dropLocked(sh)
			return nil
		}
		return err
	}
	w.stats.Released++
	w.stats.Fired += os.cron.FullStats().Fired
	os.cron.Close()
	os.jnl.Close()
	delete(w.owned, sh)
	return nil
}

// dropLocked abandons a shard without touching the lease (expired under us,
// or fenced): close our handles, keep the journal file for the next owner.
func (w *Worker) dropLocked(sh int) {
	os, ok := w.owned[sh]
	if !ok {
		return
	}
	w.stats.Fired += os.cron.FullStats().Fired
	os.cron.Close()
	os.jnl.Close()
	delete(w.owned, sh)
}

func (w *Worker) ownedIDsLocked() []int {
	ids := make([]int, 0, len(w.owned))
	for sh := range w.owned {
		ids = append(ids, sh)
	}
	sort.Ints(ids)
	return ids
}

// Owned lists the worker's shard ids, sorted.
func (w *Worker) Owned() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ownedIDsLocked()
}

// Stats returns the worker's counters (Fired includes live shards).
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Owned = len(w.owned)
	for _, os := range w.owned {
		st.Fired += os.cron.FullStats().Fired
	}
	return st
}

// NextWakeup returns the next instant the worker must act: the earliest
// per-shard daemon wakeup (re-derived from each timing wheel, so a shard
// granted or stolen since the last tick is reflected immediately) capped by
// the heartbeat deadline.
func (w *Worker) NextWakeup(now int64) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := now + w.opts.HeartbeatEvery
	for _, os := range w.owned {
		if wk := os.cron.NextWakeup(); wk < next {
			next = wk
		}
	}
	return next
}

// Shutdown is the graceful exit (SIGTERM): every shard is drained,
// compacted and released, so a clean shutdown never opens a steal window —
// peers can re-acquire the shards immediately.
func (w *Worker) Shutdown(now int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	for _, sh := range w.ownedIDsLocked() {
		if err := w.releaseLocked(sh, now); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	w.coord.Depart(w.name)
	return firstErr
}

// Run drives the worker against a real (or virtual) clock until stop is
// closed, then shuts down gracefully. Errors are delivered to errs (dropped
// when full); an injected crash stops the worker dead — no release, no
// drain — so its leases expire and peers steal them.
func (w *Worker) Run(clock rules.Clock, stop <-chan struct{}, errs chan<- error) {
	report := func(err error) {
		if err != nil && errs != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
	for {
		select {
		case <-stop:
			report(w.Shutdown(clock.Now()))
			return
		default:
		}
		now := clock.Now()
		if err := w.Tick(now); err != nil {
			report(err)
			if faultinject.IsCrash(err) {
				return
			}
		}
		wake := w.NextWakeup(clock.Now())
		sleep := wake - clock.Now()
		if sleep < 1 {
			sleep = 1
		}
		if sleep > w.opts.HeartbeatEvery {
			sleep = w.opts.HeartbeatEvery
		}
		select {
		case <-stop:
			report(w.Shutdown(clock.Now()))
			return
		case <-time.After(time.Duration(sleep) * time.Second):
		}
	}
}
