package rules

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// DBCron is the daemon of Figure 4, modeled on the UNIX cron utility: every
// T time units it probes RULE-TIME for the temporal rules triggering within
// the next T units, holds them in an in-memory min-heap, and fires each at
// its trigger instant.
//
// DBCron is deliberately step-driven: AdvanceTo(now) performs every probe
// and firing due up to `now`, so tests and benchmarks run years of rule
// activity deterministically under a virtual clock. Run wraps the same
// stepping in a goroutine for wall-clock operation (cmd/dbcrond).
type DBCron struct {
	eng *Engine
	// T is the probe period in seconds.
	T int64

	mu        sync.Mutex
	pending   firingHeap
	scheduled map[string]bool // rules already in the heap this window
	nextProbe int64
	fired     int64 // lifetime firing count
	lateSum   int64 // total firing lateness (for monitoring)
}

// NewDBCron creates a daemon over the engine with probe period T seconds,
// anchored so the first probe happens at startAt.
func NewDBCron(eng *Engine, T int64, startAt int64) (*DBCron, error) {
	if T <= 0 {
		return nil, fmt.Errorf("rules: probe period must be positive")
	}
	return &DBCron{eng: eng, T: T, scheduled: map[string]bool{}, nextProbe: startAt}, nil
}

// firingHeap is a min-heap of upcoming firings ordered by time.
type firingHeap []Firing

func (h firingHeap) Len() int           { return len(h) }
func (h firingHeap) Less(i, j int) bool { return h[i].At < h[j].At }
func (h firingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *firingHeap) Push(x any)        { *h = append(*h, x.(Firing)) }
func (h *firingHeap) Pop() any          { old := *h; n := len(old); f := old[n-1]; *h = old[:n-1]; return f }

// probe loads the rules due within the next T seconds into the heap.
func (c *DBCron) probe(now int64) error {
	due, err := c.eng.DueWithin(now, c.T)
	if err != nil {
		return err
	}
	for _, f := range due {
		if c.scheduled[f.Rule] {
			continue
		}
		c.scheduled[f.Rule] = true
		heap.Push(&c.pending, f)
	}
	c.nextProbe = now + c.T
	return nil
}

// AdvanceTo processes all probes and firings due at or before `now`, in
// timestamp order, and returns the firings executed. A rule that fails stops
// processing and surfaces the error (remaining work resumes on the next
// call).
func (c *DBCron) AdvanceTo(now int64) ([]Firing, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fired []Firing
	for {
		// Next event is either a probe or the earliest pending firing.
		nextAt := c.nextProbe
		isFiring := false
		if len(c.pending) > 0 && c.pending[0].At <= nextAt {
			nextAt = c.pending[0].At
			isFiring = true
		}
		if nextAt > now {
			return fired, nil
		}
		if isFiring {
			f := heap.Pop(&c.pending).(Firing)
			delete(c.scheduled, f.Rule)
			if err := c.eng.fire(f.Rule, f.At); err != nil {
				return fired, err
			}
			c.fired++
			c.lateSum += now - f.At
			fired = append(fired, f)
			// If the rule re-armed inside the current probe window, schedule
			// it now — the next probe would otherwise scan past it.
			if next := c.eng.nextOf(f.Rule); next <= c.nextProbe && !c.scheduled[f.Rule] {
				c.scheduled[f.Rule] = true
				heap.Push(&c.pending, Firing{Rule: f.Rule, At: next})
			}
			continue
		}
		if err := c.probe(nextAt); err != nil {
			return fired, err
		}
	}
}

// NextWakeup returns the next instant the daemon must act (probe or firing).
func (c *DBCron) NextWakeup() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.nextProbe
	if len(c.pending) > 0 && c.pending[0].At < next {
		next = c.pending[0].At
	}
	return next
}

// Stats reports lifetime firing count and cumulative lateness seconds.
func (c *DBCron) Stats() (fired int64, lateSum int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired, c.lateSum
}

// Run drives the daemon against a real (or virtual) clock until stop is
// closed, sleeping between wakeups. Errors are delivered to errs (dropped
// when full) and processing continues with the next event.
func (c *DBCron) Run(clock Clock, stop <-chan struct{}, errs chan<- error) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		now := clock.Now()
		if _, err := c.AdvanceTo(now); err != nil && errs != nil {
			select {
			case errs <- err:
			default:
			}
		}
		wake := c.NextWakeup()
		sleep := wake - clock.Now()
		if sleep < 1 {
			sleep = 1
		}
		if sleep > c.T {
			sleep = c.T
		}
		select {
		case <-stop:
			return
		case <-time.After(time.Duration(sleep) * time.Second):
		}
	}
}
