package rules

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calsys/internal/faultinject"
	"calsys/internal/rules/journal"
)

// ErrFenced is returned (wrapped) by a CronOptions.Fence check when the
// daemon's shard lease is no longer valid: the firing transaction aborts and
// the daemon must stop processing the shard — a newer owner holds it.
var ErrFenced = errors.New("rules: firing fenced: shard lease lost")

// ShardOf assigns a rule to one of `shards` partitions by an FNV-1a hash of
// its lower-cased name. It is the single sharding function of the system:
// probe windows, recovery and per-shard journals all agree on it.
func ShardOf(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		h ^= uint32(c)
		h *= prime32
	}
	return int(h % uint32(shards))
}

// Fault-injection sites in the daemon.
const (
	// SiteProbe is hit at the top of each RULE-TIME probe.
	SiteProbe = "dbcron.probe"
	// SiteAck is hit after a firing's transaction commits and before its
	// journal ack is written — the classic at-least-once window. Recovery
	// closes it by detecting the advanced RULE-TIME and acking without
	// re-executing.
	SiteAck = "dbcron.ack"
)

// CatchUpPolicy selects what recovery does with trigger instants that came
// due while the daemon was down — the classic cron catch-up semantics.
type CatchUpPolicy int

const (
	// FireAll executes every missed instant, in order (anacron-style).
	FireAll CatchUpPolicy = iota
	// FireLast executes only the most recent missed instant per rule.
	FireLast
	// SkipMissed executes none of them; triggers resume strictly after the
	// recovery instant.
	SkipMissed
)

func (p CatchUpPolicy) String() string {
	switch p {
	case FireAll:
		return "fireall"
	case FireLast:
		return "firelast"
	case SkipMissed:
		return "skip"
	}
	return fmt.Sprintf("CatchUpPolicy(%d)", int(p))
}

// ParseCatchUpPolicy resolves a policy name (fireall | firelast | skip).
func ParseCatchUpPolicy(s string) (CatchUpPolicy, error) {
	switch strings.ToLower(s) {
	case "fireall", "all":
		return FireAll, nil
	case "firelast", "last":
		return FireLast, nil
	case "skip", "none":
		return SkipMissed, nil
	}
	return 0, fmt.Errorf("rules: unknown catch-up policy %q", s)
}

// RetryPolicy bounds how a failing action is retried: exponential backoff
// from BaseDelay doubling up to MaxDelay, plus a seeded jitter fraction.
// MaxAttempts counts the first try; when it is exhausted the firing moves to
// RULE-DEADLETTER. The zero value means "no retries" (legacy fail-fast).
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   int64 // seconds before the first retry (default 2)
	MaxDelay    int64 // backoff cap in seconds (default 300)
	Jitter      float64
}

// DefaultRetryPolicy is applied by NewDBCronWith when none is given.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 5, BaseDelay: 2, MaxDelay: 300, Jitter: 0.2}

// backoff returns the delay in seconds before the next try, after `attempt`
// completed attempts (attempt >= 1).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) int64 {
	d := p.BaseDelay
	if d <= 0 {
		d = 2
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 300
	}
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 && rng != nil {
		d += int64(float64(d) * p.Jitter * rng.Float64())
	}
	if d < 1 {
		d = 1
	}
	return d
}

// CronOptions configures a durable daemon (NewDBCronWith).
type CronOptions struct {
	// Journal, when set, records scheduled → fired → acked transitions for
	// every firing, enabling crash recovery.
	Journal *journal.Journal
	// Retry bounds per-firing retries; zero value adopts DefaultRetryPolicy.
	Retry RetryPolicy
	// CatchUp selects recovery semantics for triggers missed while down.
	CatchUp CatchUpPolicy
	// ActionTimeout bounds one action execution (0 = unbounded).
	ActionTimeout time.Duration
	// MaxCatchUp caps recovery firings per rule under FireAll (default 10000).
	MaxCatchUp int
	// Seed makes retry jitter deterministic.
	Seed int64
	// Faults threads the fault-injection harness through the daemon.
	Faults *faultinject.Injector
	// Shard/Shards restrict the daemon to rules with ShardOf(name, Shards)
	// == Shard. Shards <= 0 (the default) probes the whole fleet.
	Shard  int
	Shards int
	// Fence, when set, is called inside every firing transaction before any
	// effect, with the daemon's current instant. Returning an error (by
	// convention wrapping ErrFenced) aborts the firing: a worker whose shard
	// lease was stolen cannot commit stale firings.
	Fence func(now int64) error
	// DisableWheel falls back to the seed min-heap container with its
	// per-probe schedule rescan — the ablation arm of
	// BenchmarkTimingWheelVsHeap.
	DisableWheel bool
}

// DBCron is the daemon of Figure 4, modeled on the UNIX cron utility: every
// T time units it probes RULE-TIME for the temporal rules triggering within
// the next T units, holds them in an in-memory min-heap, and fires each at
// its trigger instant.
//
// DBCron is deliberately step-driven: AdvanceTo(now) performs every probe
// and firing due up to `now`, so tests and benchmarks run years of rule
// activity deterministically under a virtual clock. Run wraps the same
// stepping in a goroutine for wall-clock operation (cmd/dbcrond).
//
// A daemon built with NewDBCronWith is durable: firings are journaled,
// failing actions retry with exponential backoff until a budget moves them
// to RULE-DEADLETTER, and Recover replays the journal and catches up missed
// triggers after a crash.
type DBCron struct {
	eng *Engine
	// T is the probe period in seconds.
	T       int64
	durable bool
	opts    CronOptions
	rng     *rand.Rand

	// catalogChanged is set by the calendar catalog's change listener; the
	// next probe runs a mass next-trigger recompute before scheduling.
	catalogChanged atomic.Bool

	// closed marks a daemon whose shard was handed off; its catalog
	// listener goes quiet and its engine drop listener is unhooked.
	closed atomic.Bool
	dropID int
	// kick wakes a blocked Run immediately after the schedule gains entries
	// out of band (Recover / AdoptState on a stolen or granted shard), so
	// the daemon never sleeps through newly-acquired due instants.
	kick chan struct{}

	mu         sync.Mutex
	queue      firingQueue
	scheduled  map[string]bool // rules (lower-cased) currently armed
	nextProbe  int64
	recovering bool  // Recover in progress: it chains catch-up itself
	fired      int64 // lifetime firing count
	lateSum    int64 // total firing lateness (for monitoring)
	retries    int64 // failed attempts that were rescheduled
	dead       int64 // firings moved to RULE-DEADLETTER
}

// NewDBCron creates a daemon over the engine with probe period T seconds,
// anchored so the first probe happens at startAt. It fails fast on action
// errors (no retries, no journal); use NewDBCronWith for the durable daemon.
func NewDBCron(eng *Engine, T int64, startAt int64) (*DBCron, error) {
	if T <= 0 {
		return nil, fmt.Errorf("rules: probe period must be positive")
	}
	c := &DBCron{
		eng: eng, T: T,
		queue:     newTimingWheel(startAt),
		scheduled: map[string]bool{},
		nextProbe: startAt,
		kick:      make(chan struct{}, 1),
	}
	c.dropID = eng.addDropListener(c.ruleDropped)
	eng.Cal().AddChangeListener(func() {
		if !c.closed.Load() {
			c.catalogChanged.Store(true)
		}
	})
	return c, nil
}

// Close detaches the daemon from its engine: the drop listener is removed
// and the catalog listener goes quiet. A worker calls it when a shard is
// handed off so repeated handoffs do not accumulate listeners.
func (c *DBCron) Close() {
	if c.closed.CompareAndSwap(false, true) {
		c.eng.removeDropListener(c.dropID)
	}
}

// NewDBCronWith creates a durable daemon: journaled firings, retry with
// backoff and dead-lettering, and Recover support.
func NewDBCronWith(eng *Engine, T int64, startAt int64, opts CronOptions) (*DBCron, error) {
	c, err := NewDBCron(eng, T, startAt)
	if err != nil {
		return nil, err
	}
	if opts.Retry.MaxAttempts <= 0 {
		opts.Retry = DefaultRetryPolicy
	}
	if opts.MaxCatchUp <= 0 {
		opts.MaxCatchUp = 10000
	}
	c.durable = true
	c.opts = opts
	c.rng = rand.New(rand.NewSource(opts.Seed))
	if opts.DisableWheel {
		c.queue = &heapQueue{}
	}
	return c, nil
}

// pendingFiring is one heap entry: a firing plus its retry state.
type pendingFiring struct {
	Firing
	runAt   int64  // when to (re)attempt; equals At until a retry backs off
	attempt int    // completed attempts
	seq     uint64 // journal sequence (0 when no journal)
}

// firingHeap is a min-heap of upcoming attempts ordered by runAt.
type firingHeap []pendingFiring

func (h firingHeap) Len() int           { return len(h) }
func (h firingHeap) Less(i, j int) bool { return h[i].runAt < h[j].runAt }
func (h firingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *firingHeap) Push(x any)        { *h = append(*h, x.(pendingFiring)) }
func (h *firingHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	*h = old[:n-1]
	return f
}

// newPending builds a heap entry for a trigger, journaling its acceptance.
func (c *DBCron) newPending(rule string, at int64) (pendingFiring, error) {
	pf := pendingFiring{Firing: Firing{Rule: rule, At: at}, runAt: at}
	if j := c.opts.Journal; j != nil {
		seq, err := j.Scheduled(rule, at)
		if err != nil {
			return pf, err
		}
		pf.seq = seq
	}
	return pf, nil
}

// probe loads the rules due within the next T seconds into the heap.
func (c *DBCron) probe(now int64) error {
	if err := faultinject.Hit(c.opts.Faults, SiteProbe); err != nil {
		return err
	}
	// A calendar catalog change invalidates every stored next trigger: run
	// the batched recompute (one RULE-TIME transaction, worker pool across
	// plan groups) before scheduling from the table. Heap entries whose
	// instant moved are neutralized by the firing path's already-advanced
	// check against RULE-TIME.
	if c.catalogChanged.CompareAndSwap(true, false) {
		if _, err := c.eng.RecomputeAll(now); err != nil {
			return err
		}
	}
	due, err := c.eng.DueWithin(now, c.T)
	if err != nil {
		return err
	}
	if c.opts.DisableWheel {
		// Seed behavior: rebuild the scheduled set by scanning every armed
		// entry on each window rollover — O(pending) per probe. The wheel
		// path maintains the set incrementally instead (every pop site
		// clears its key), which is what makes a probe tick O(due).
		sched := make(map[string]bool, c.queue.size())
		c.queue.each(func(pf pendingFiring) {
			sched[strings.ToLower(pf.Rule)] = true
		})
		c.scheduled = sched
	}
	journaled := false
	for _, f := range due {
		if !c.inShard(f.Rule) {
			continue
		}
		key := strings.ToLower(f.Rule)
		if c.scheduled[key] {
			continue
		}
		pf, err := c.newPending(f.Rule, f.At)
		if err != nil {
			return err
		}
		journaled = journaled || pf.seq != 0
		c.scheduled[key] = true
		c.queue.add(pf)
	}
	if journaled {
		if err := c.opts.Journal.Sync(); err != nil {
			return err
		}
	}
	c.nextProbe = now + c.T
	return nil
}

// inShard reports whether the daemon owns the rule under its shard filter.
func (c *DBCron) inShard(name string) bool {
	return c.opts.Shards <= 0 || ShardOf(name, c.opts.Shards) == c.opts.Shard
}

// execute runs one attempt of a pending firing (c.mu held). It reports
// whether the firing committed; a non-nil error means processing must stop
// (legacy-mode action failure, injected crash, lost shard lease, or journal
// I/O error) — durable-mode action failures are absorbed into retries or the
// dead-letter table instead.
func (c *DBCron) execute(pf *pendingFiring, now int64) (bool, error) {
	key := strings.ToLower(pf.Rule)
	j := c.opts.Journal
	if j != nil {
		if err := j.Begin(pf.seq, pf.attempt+1); err != nil {
			return false, err
		}
	}
	var fence func() error
	if c.opts.Fence != nil {
		fence = func() error { return c.opts.Fence(now) }
	}
	err := c.eng.fireChecked(pf.Rule, pf.At, c.opts.ActionTimeout, fence)
	pf.attempt++
	if err == nil {
		if err := faultinject.Hit(c.opts.Faults, SiteAck); err != nil {
			// The firing committed but its ack is lost with the crash;
			// recovery deduplicates via RULE-TIME.
			return true, err
		}
		if j != nil {
			if err := j.Ack(pf.seq); err != nil {
				return true, err
			}
		}
		delete(c.scheduled, key)
		c.fired++
		c.lateSum += now - pf.At
		// If the rule re-armed inside the current probe window, schedule it
		// now — the next probe would otherwise scan past it. (Recovery
		// chains catch-up instants itself, so skip the re-arm there.)
		if next := c.eng.nextOf(pf.Rule); !c.recovering && next <= c.nextProbe && next < noTrigger && !c.scheduled[key] {
			npf, err := c.newPending(pf.Rule, next)
			if err != nil {
				return true, err
			}
			c.scheduled[key] = true
			c.queue.add(npf)
		}
		return true, nil
	}
	if errors.Is(err, ErrFenced) {
		// The shard lease was lost mid-window: stop without retrying or
		// dead-lettering (either would advance RULE-TIME under the new
		// owner's feet). The new owner recovers and fires this instant.
		return false, err
	}
	if faultinject.IsCrash(err) {
		return false, err
	}
	if !c.durable {
		delete(c.scheduled, key)
		return false, err
	}
	if pf.attempt >= c.opts.Retry.MaxAttempts {
		c.dead++
		if derr := c.eng.deadLetter(pf.Rule, pf.At, pf.attempt, err.Error(), now); derr != nil {
			delete(c.scheduled, key)
			return false, derr
		}
		if j != nil {
			if derr := j.Dead(pf.seq, pf.attempt, err.Error()); derr != nil {
				return false, derr
			}
		}
		delete(c.scheduled, key)
		return false, nil
	}
	c.retries++
	pf.runAt = now + c.opts.Retry.backoff(pf.attempt, c.rng)
	c.scheduled[key] = true
	c.queue.add(*pf)
	return false, nil
}

// AdvanceTo processes all probes and firings due at or before `now`, in
// timestamp order, and returns the firings executed. In legacy (fail-fast)
// mode a rule that fails stops processing and surfaces the error; in
// durable mode failures retry with backoff and processing continues.
func (c *DBCron) AdvanceTo(now int64) ([]Firing, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fired []Firing
	for {
		// Next event is either a probe or the earliest pending attempt;
		// firings at the probe instant run before the probe (seed order).
		limit := c.nextProbe
		if now < limit {
			limit = now
		}
		if pf, ok := c.queue.popDue(limit); ok {
			done, err := c.execute(&pf, now)
			if done {
				fired = append(fired, pf.Firing)
			}
			if err != nil {
				return fired, err
			}
			continue
		}
		if c.nextProbe > now {
			return fired, nil
		}
		if err := c.probe(c.nextProbe); err != nil {
			return fired, err
		}
	}
}

// ruleDropped is the engine's drop notification: discard schedule state so a
// redefined rule starts clean instead of being suppressed by a stale window
// entry or fired at a stale instant.
func (c *DBCron) ruleDropped(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.scheduled, key)
	for _, pf := range c.queue.removeRule(key) {
		if j := c.opts.Journal; j != nil && pf.seq != 0 {
			_ = j.Skip(pf.seq) // best-effort; recovery also skips unknown rules
		}
	}
}

// NextWakeup returns the next instant the daemon must act (probe, firing or
// retry). With the timing wheel the firing bound is conservative: it is
// never later than the true next instant, so a wake can be early but never
// sleeps through due work. It is re-derived from the wheel on every call,
// so schedule changes from Recover/AdoptState are reflected immediately.
func (c *DBCron) NextWakeup() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.nextProbe
	if q := c.queue.next(); q < next {
		next = q
	}
	return next
}

// Stats reports lifetime firing count and cumulative lateness seconds.
func (c *DBCron) Stats() (fired int64, lateSum int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired, c.lateSum
}

// CronStats is the daemon's full counter snapshot.
type CronStats struct {
	Fired   int64 // firings committed
	LateSum int64 // cumulative lateness seconds
	Retries int64 // failed attempts rescheduled with backoff
	Dead    int64 // firings moved to RULE-DEADLETTER
	Pending int   // heap entries awaiting execution or retry
}

// FullStats reports all daemon counters.
func (c *DBCron) FullStats() CronStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CronStats{Fired: c.fired, LateSum: c.lateSum, Retries: c.retries, Dead: c.dead, Pending: c.queue.size()}
}

// Run drives the daemon against a real (or virtual) clock until stop is
// closed, sleeping between wakeups. Errors are delivered to errs (dropped
// when full) and processing continues with the next event. On stop the
// daemon drains: one final sweep fires everything already due, so a clean
// shutdown leaves no accepted firing behind in the heap.
func (c *DBCron) Run(clock Clock, stop <-chan struct{}, errs chan<- error) {
	report := func(err error) {
		if err != nil && errs != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
	drain := func() {
		_, err := c.AdvanceTo(clock.Now())
		report(err)
	}
	for {
		select {
		case <-stop:
			drain()
			return
		default:
		}
		now := clock.Now()
		_, err := c.AdvanceTo(now)
		report(err)
		wake := c.NextWakeup()
		sleep := wake - clock.Now()
		if sleep < 1 {
			sleep = 1
		}
		if sleep > c.T {
			sleep = c.T
		}
		select {
		case <-stop:
			drain()
			return
		case <-c.kick:
			// The schedule changed out of band (a shard was granted or
			// recovered): loop to re-derive the wakeup from the wheel.
		case <-time.After(time.Duration(sleep) * time.Second):
		}
	}
}

// poke wakes a blocked Run so it re-derives its next wakeup.
func (c *DBCron) poke() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}
