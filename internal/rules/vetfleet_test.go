package rules

import (
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/store"
)

func nopAction(name string) Action {
	return FuncAction{Name: name, Fn: func(tx *store.Txn, ev *store.Event, at int64) error { return nil }}
}

// VetFleet must group rules that provably fire at identical instants —
// across different spellings, through catalog references, and across
// granularities — and must not group rules that fire differently.
func TestVetFleet(t *testing.T) {
	eng, cal := newEngine(t)
	ch := cal.Chron()
	start := ch.EpochSecondsOf(d(1993, 1, 1))
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	if err := cal.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS;", ls, caldb.GranAuto); err != nil {
		t.Fatal(err)
	}

	defs := []struct{ name, expr string }{
		{"weekly_report", "[1]/DAYS:during:WEEKS"},
		{"monday_sync", "[1]/DAYS.during.WEEKS"}, // relaxed spelling, same set
		{"monday_alias", "Mondays"},              // catalog reference
		{"daily_backup", "DAYS"},
		{"midnight_job", "[1]/HOURS:during:DAYS"}, // fires with daily_backup
		{"tuesday_audit", "[2]/DAYS:during:WEEKS"},
	}
	for _, def := range defs {
		if err := eng.DefineTemporalRule(def.name, def.expr, nopAction(def.name), start); err != nil {
			t.Fatalf("define %s: %v", def.name, err)
		}
	}

	groups := eng.VetFleet()
	if len(groups) != 2 {
		t.Fatalf("got %d merge groups, want 2: %v", len(groups), groups)
	}
	wantRules := [][]string{
		{"daily_backup", "midnight_job"},
		{"monday_alias", "monday_sync", "weekly_report"},
	}
	for i, g := range groups {
		if !g.Exact {
			t.Errorf("group %d not proven exact: %+v", i, g)
		}
		if len(g.Rules) != len(wantRules[i]) {
			t.Fatalf("group %d = %v, want %v", i, g.Rules, wantRules[i])
		}
		for j, name := range g.Rules {
			if name != wantRules[i][j] {
				t.Fatalf("group %d = %v, want %v", i, g.Rules, wantRules[i])
			}
		}
	}
	want := "rules daily_backup, midnight_job fire on identical instants — merge them"
	if got := groups[0].String(); got != want {
		t.Errorf("merge message = %q, want %q", got, want)
	}
}
