package timeseries

import (
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
)

// A series whose valid time comes from a stored calendar must see catalog
// updates: replacing the calendar's values mid-life shifts the observation
// spans on the next request instead of serving a stale span cache.
func TestSeriesSeesReplacedCalendar(t *testing.T) {
	m := mgr(t)
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	// Settlement dates, initially the 5th of Jan/Feb/Mar 1987 (day ticks
	// relative to the 1987 epoch: Jan 1 1987 is tick 1).
	orig, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{5, 36, 64})
	if err := m.DefineStored("SETTLE", orig, ls); err != nil {
		t.Fatal(err)
	}
	s, err := NewRegular(m, "fees", "SETTLE", d(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Append(10, 20, 30)
	obs, err := s.Observations()
	if err != nil {
		t.Fatal(err)
	}
	if obs[0].Span.Lo != 5 || obs[1].Span.Lo != 36 {
		t.Fatalf("initial spans = %v, %v", obs[0].Span, obs[1].Span)
	}
	// The settlement schedule moves to the 10th of each month.
	moved, _ := calendar.FromPoints(chronology.Day, []chronology.Tick{10, 41, 69})
	if err := m.ReplaceStored("SETTLE", moved); err != nil {
		t.Fatal(err)
	}
	obs, err = s.Observations()
	if err != nil {
		t.Fatal(err)
	}
	want := []chronology.Tick{10, 41, 69}
	for i, o := range obs {
		if o.Span.Lo != want[i] {
			t.Errorf("post-replace span %d = %v, want Lo=%d (stale span cache?)", i, o.Span, want[i])
		}
	}
}
