// Package timeseries implements regular time series over calendars: series
// whose observation instants are defined by a calendar expression, so the
// time points need not be stored — they are generated on request, which is
// how the paper proposes maintaining valid time for regular series such as
// the quarterly GNP (§1).
//
// The package also implements the paper's future-work item (a): selection
// predicates over the series values ("the time points at which the
// end-of-day closing prices for two successive days showed an increase"),
// as pattern queries over value windows.
package timeseries

import (
	"fmt"
	"math"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Obs is one observation: its valid-time interval (generated, not stored)
// and its value.
type Obs struct {
	Span  interval.Interval
	Value float64
}

// Regular is a regular time series: values only, with valid time defined by
// a calendar expression evaluated on demand.
type Regular struct {
	name   string
	calSrc string
	mgr    *caldb.Manager
	from   chronology.Civil
	values []float64

	gran chronology.Granularity
	// horizonDays is how far ahead the calendar has had to be evaluated so
	// far. The spans themselves are not kept here: every request re-evaluates
	// the expression through the catalog's shared materialization cache, so
	// repeated requests are cheap while calendar redefinitions (a holiday
	// list replaced mid-year) are picked up instead of served stale.
	horizonDays int64
}

// NewRegular creates a series whose observation spans are the elements of
// the calendar expression, starting at from. For quarterly GNP the
// expression would be "caloperate(MONTHS, 3)" or a stored QUARTERS calendar.
func NewRegular(mgr *caldb.Manager, name, calExpr string, from chronology.Civil) (*Regular, error) {
	if !from.Valid() {
		return nil, fmt.Errorf("timeseries: invalid start date %v", from)
	}
	r := &Regular{name: name, calSrc: calExpr, mgr: mgr, from: from, horizonDays: 366}
	// Validate the expression eagerly.
	if _, err := r.spansFor(1); err != nil {
		return nil, err
	}
	return r, nil
}

// Name returns the series name.
func (r *Regular) Name() string { return r.name }

// CalendarExpr returns the valid-time calendar expression.
func (r *Regular) CalendarExpr() string { return r.calSrc }

// Len returns the number of observations.
func (r *Regular) Len() int { return len(r.values) }

// Granularity returns the tick unit of the generated spans.
func (r *Regular) Granularity() chronology.Granularity { return r.gran }

// Append records the next observation; its valid time is implicit.
func (r *Regular) Append(vs ...float64) {
	r.values = append(r.values, vs...)
}

// Values returns the raw values (shared slice; do not modify).
func (r *Regular) Values() []float64 { return r.values }

// spansFor evaluates the calendar far enough ahead to yield at least n
// observation spans, doubling the horizon as needed. The evaluation runs
// through the catalog's shared materialization cache, so only the first
// request (and requests after a catalog change, whose results must differ)
// pays for generation.
func (r *Regular) spansFor(n int) ([]interval.Interval, error) {
	// maxHorizonDays bounds the search to ~80 years; a calendar yielding
	// fewer points than observations within that span is an error.
	const maxHorizonDays = 30000
	var spans []interval.Interval
	for {
		if r.horizonDays > maxHorizonDays {
			return nil, fmt.Errorf("timeseries: calendar %q yields too few points (%d of %d) within %d days",
				r.calSrc, len(spans), n, r.horizonDays)
		}
		to := r.from.AddDays(r.horizonDays)
		cal, err := r.mgr.EvalExpr(r.calSrc, r.from, to)
		if err != nil {
			return nil, err
		}
		flat := cal.Flatten()
		r.gran = flat.Granularity()
		// Keep only spans at or after the series start.
		startTick := r.mgr.Chron().TickAt(r.gran, r.mgr.Chron().EpochSecondsOf(r.from))
		spans = spans[:0]
		for _, iv := range flat.Intervals() {
			if iv.Hi >= startTick {
				spans = append(spans, iv)
			}
		}
		if len(spans) >= n {
			return spans, nil
		}
		r.horizonDays *= 2
	}
}

// Observations materializes the series: spans generated from the calendar,
// paired with stored values.
func (r *Regular) Observations() ([]Obs, error) {
	spans, err := r.spansFor(len(r.values))
	if err != nil {
		return nil, err
	}
	out := make([]Obs, len(r.values))
	for i, v := range r.values {
		out[i] = Obs{Span: spans[i], Value: v}
	}
	return out, nil
}

// SpanOf returns the valid-time interval of observation i.
func (r *Regular) SpanOf(i int) (interval.Interval, error) {
	if i < 0 || i >= len(r.values) {
		return interval.Interval{}, fmt.Errorf("timeseries: observation %d out of range", i)
	}
	spans, err := r.spansFor(i + 1)
	if err != nil {
		return interval.Interval{}, err
	}
	return spans[i], nil
}

// At returns the value valid at the given civil date, resolved through the
// generated calendar.
func (r *Regular) At(d chronology.Civil) (float64, bool, error) {
	spans, err := r.spansFor(len(r.values))
	if err != nil {
		return 0, false, err
	}
	tick := r.mgr.Chron().TickAt(r.gran, r.mgr.Chron().EpochSecondsOf(d))
	for i := range r.values {
		if spans[i].Contains(tick) {
			return r.values[i], true, nil
		}
	}
	return 0, false, nil
}

// Slice returns the observations whose spans overlap [from, to].
func (r *Regular) Slice(from, to chronology.Civil) ([]Obs, error) {
	obs, err := r.Observations()
	if err != nil {
		return nil, err
	}
	ch := r.mgr.Chron()
	lo := ch.TickAt(r.gran, ch.EpochSecondsOf(from))
	hi := ch.TickAt(r.gran, ch.EpochSecondsOf(to.AddDays(1))-1)
	win := interval.Interval{Lo: lo, Hi: hi}
	var out []Obs
	for _, o := range obs {
		if _, ok := o.Span.Intersect(win); ok {
			out = append(out, o)
		}
	}
	return out, nil
}

// AggregateTo regroups the series under a coarser calendar expression,
// combining the values of observations falling in each coarser span with
// agg. Observations overlapping a coarser span contribute to it.
func (r *Regular) AggregateTo(coarseExpr string, agg func([]float64) float64) ([]Obs, error) {
	obs, err := r.Observations()
	if err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, nil
	}
	ch := r.mgr.Chron()
	lastHi := obs[len(obs)-1].Span.Hi
	endSec := ch.UnitEndExcl(r.gran, lastHi) - 1
	to := ch.CivilOf(endSec)
	coarse, err := r.mgr.EvalExpr(coarseExpr, r.from, to)
	if err != nil {
		return nil, err
	}
	flatRaw := coarse.Flatten()
	flat, err := calendar.ConvertGran(ch, flatRaw, r.gran)
	if err != nil {
		return nil, err
	}
	var out []Obs
	for _, span := range flat.Intervals() {
		var group []float64
		for _, o := range obs {
			if _, ok := o.Span.Intersect(span); ok {
				group = append(group, o.Value)
			}
		}
		if len(group) > 0 {
			out = append(out, Obs{Span: span, Value: agg(group)})
		}
	}
	return out, nil
}

// Mean is an aggregation function for AggregateTo.
func Mean(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Sum is an aggregation function for AggregateTo.
func Sum(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s
}

// Last is an aggregation function for AggregateTo (end-of-period sampling).
func Last(vs []float64) float64 { return vs[len(vs)-1] }

// Max is an aggregation function for AggregateTo.
func Max(vs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// --- pattern selection (future work (a) of §6) -------------------------

// Pattern is a predicate over a sliding window of consecutive values.
type Pattern struct {
	// Width is the window length (2 for S_t vs Next(S_t)).
	Width int
	// Match reports whether the window exhibits the pattern.
	Match func(window []float64) bool
}

// Increase is the paper's example pattern {S_t < Next(S_t)}.
var Increase = Pattern{Width: 2, Match: func(w []float64) bool { return w[0] < w[1] }}

// Decrease is the mirrored pattern.
var Decrease = Pattern{Width: 2, Match: func(w []float64) bool { return w[0] > w[1] }}

// TwoDayRise matches two successive increases ("end-of-day closing prices
// for two successive days showed an increase").
var TwoDayRise = Pattern{Width: 3, Match: func(w []float64) bool { return w[0] < w[1] && w[1] < w[2] }}

// SelectPattern returns, as a calendar, the valid-time spans of the
// observations starting each window that matches the pattern — turning the
// paper's proposed "Retrieve the time points at which ..." query into a
// calendar usable in further algebra.
func (r *Regular) SelectPattern(p Pattern) (*calendar.Calendar, []int, error) {
	if p.Width < 1 || p.Match == nil {
		return nil, nil, fmt.Errorf("timeseries: pattern needs a positive width and a matcher")
	}
	obs, err := r.Observations()
	if err != nil {
		return nil, nil, err
	}
	var idx []int
	var ivs []interval.Interval
	for i := 0; i+p.Width <= len(obs); i++ {
		window := make([]float64, p.Width)
		for j := 0; j < p.Width; j++ {
			window[j] = obs[i+j].Value
		}
		if p.Match(window) {
			idx = append(idx, i)
			ivs = append(ivs, obs[i].Span)
		}
	}
	cal, err := calendar.FromIntervals(r.gran, ivs)
	if err != nil {
		return nil, nil, err
	}
	return cal, idx, nil
}
