package timeseries

import (
	"math"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/store"
)

func d(y, m, day int) chronology.Civil { return chronology.Civil{Year: y, Month: m, Day: day} }

func mgr(t testing.TB) *caldb.Manager {
	t.Helper()
	m, err := caldb.New(store.NewDB(), chronology.MustNew(chronology.DefaultEpoch))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The GNP motivation of §1: a quarterly series stores only values; the
// valid time points — the last day of every quarter — are generated from the
// calendar expression on request.
func TestQuarterlyGNP(t *testing.T) {
	m := mgr(t)
	gnp, err := NewRegular(m, "GNP", "[n]/DAYS:during:caloperate(MONTHS, 3)", d(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Eight quarters of observations (1987-1988).
	gnp.Append(4500, 4520, 4555, 4600, 4610, 4650, 4700, 4755)
	obs, err := gnp.Observations()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 8 {
		t.Fatalf("observations = %d", len(obs))
	}
	ch := m.Chron()
	wantEnds := []chronology.Civil{
		d(1987, 3, 31), d(1987, 6, 30), d(1987, 9, 30), d(1987, 12, 31),
		d(1988, 3, 31), d(1988, 6, 30), d(1988, 9, 30), d(1988, 12, 31),
	}
	for i, o := range obs {
		if got := ch.CivilOfDayTick(o.Span.Lo); got != wantEnds[i] {
			t.Errorf("obs %d valid at %v, want %v", i, got, wantEnds[i])
		}
	}
	// Point lookup through generated valid time.
	v, ok, err := gnp.At(d(1987, 6, 30))
	if err != nil || !ok || v != 4520 {
		t.Errorf("At(1987-06-30) = %v,%v,%v", v, ok, err)
	}
	if _, ok, _ := gnp.At(d(1987, 6, 29)); ok {
		t.Error("no observation is valid on a non-quarter-end day")
	}
}

func TestSliceAndSpanOf(t *testing.T) {
	m := mgr(t)
	s, err := NewRegular(m, "EOM", "[n]/DAYS:during:MONTHS", d(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Append(1, 2, 3, 4, 5, 6)
	got, err := s.Slice(d(1987, 2, 1), d(1987, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Value != 2 || got[2].Value != 4 {
		t.Errorf("slice = %v", got)
	}
	sp, err := s.SpanOf(0)
	if err != nil || sp.Lo != 31 {
		t.Errorf("SpanOf(0) = %v, %v", sp, err)
	}
	if _, err := s.SpanOf(99); err == nil {
		t.Error("out-of-range span should fail")
	}
	if s.Name() != "EOM" || s.Len() != 6 || s.Granularity() != chronology.Day {
		t.Error("metadata wrong")
	}
	if s.CalendarExpr() == "" || len(s.Values()) != 6 {
		t.Error("accessors wrong")
	}
}

func TestHorizonGrowth(t *testing.T) {
	m := mgr(t)
	// Yearly observations: the initial 366-day horizon must auto-extend to
	// cover ten years of spans.
	s, err := NewRegular(m, "ANNUAL", "[n]/DAYS:during:YEARS", d(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	obs, err := s.Observations()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 10 {
		t.Fatalf("observations = %d", len(obs))
	}
	if got := m.Chron().CivilOfDayTick(obs[9].Span.Lo); got != d(1996, 12, 31) {
		t.Errorf("10th year end = %v", got)
	}
}

func TestAggregateTo(t *testing.T) {
	m := mgr(t)
	// Monthly series aggregated to quarters.
	s, err := NewRegular(m, "SALES", "[n]/DAYS:during:MONTHS", d(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Append(10, 20, 30, 40, 50, 60)
	q, err := s.AggregateTo("caloperate(MONTHS, 3)", Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 || q[0].Value != 60 || q[1].Value != 150 {
		t.Errorf("quarterly sums = %v", q)
	}
	qm, err := s.AggregateTo("caloperate(MONTHS, 3)", Mean)
	if err != nil {
		t.Fatal(err)
	}
	if qm[0].Value != 20 || qm[1].Value != 50 {
		t.Errorf("quarterly means = %v", qm)
	}
	ql, err := s.AggregateTo("caloperate(MONTHS, 3)", Last)
	if err != nil {
		t.Fatal(err)
	}
	if ql[0].Value != 30 || ql[1].Value != 60 {
		t.Errorf("quarterly last = %v", ql)
	}
	qx, err := s.AggregateTo("caloperate(MONTHS, 3)", Max)
	if err != nil {
		t.Fatal(err)
	}
	if qx[0].Value != 30 || qx[1].Value != 60 {
		t.Errorf("quarterly max = %v", qx)
	}
}

// Future work (a) of §6: the pattern {S_t < Next(S_t)} as a calendar of
// time points.
func TestSelectPattern(t *testing.T) {
	m := mgr(t)
	s, err := NewRegular(m, "CLOSE", "DAYS", d(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Append(100, 101, 99, 102, 103, 103, 101)
	cal, idx, err := s.SelectPattern(Increase)
	if err != nil {
		t.Fatal(err)
	}
	// Increases start at indices 0 (100<101), 2 (99<102), 3 (102<103).
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 2 || idx[2] != 3 {
		t.Errorf("increase indices = %v", idx)
	}
	if cal.String() != "{(1,1),(3,3),(4,4)}" {
		t.Errorf("increase calendar = %v", cal)
	}
	_, idx, err = s.SelectPattern(TwoDayRise)
	if err != nil {
		t.Fatal(err)
	}
	// Two successive increases start at index 2 (99<102<103).
	if len(idx) != 1 || idx[0] != 2 {
		t.Errorf("two-day rise indices = %v", idx)
	}
	_, idx, err = s.SelectPattern(Decrease)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 { // 101>99, 103>101
		t.Errorf("decrease indices = %v", idx)
	}
	if _, _, err := s.SelectPattern(Pattern{}); err == nil {
		t.Error("invalid pattern should fail")
	}
}

func TestErrors(t *testing.T) {
	m := mgr(t)
	if _, err := NewRegular(m, "X", "][", d(1987, 1, 1)); err == nil {
		t.Error("bad calendar expression should fail")
	}
	if _, err := NewRegular(m, "X", "DAYS", chronology.Civil{Year: 1987, Month: 2, Day: 30}); err == nil {
		t.Error("invalid start date should fail")
	}
	// A calendar producing no points within any horizon.
	s, err := NewRegular(m, "Y", "DAYS:during:interval(-10, -5)", d(1987, 1, 1))
	if err == nil {
		s.Append(1)
		if _, err := s.Observations(); err == nil {
			t.Error("series with too few points should fail")
		}
	}
}

func TestAggHelpers(t *testing.T) {
	vs := []float64{1, 2, 3, 4}
	if Mean(vs) != 2.5 || Sum(vs) != 10 || Last(vs) != 4 || Max(vs) != 4 {
		t.Error("aggregation helpers wrong")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max of empty is -inf")
	}
}
