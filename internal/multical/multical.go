// Package multical implements the comparison baseline of §5 of the paper: a
// working subset of Soo and Snodgrass's MultiCal proposal ([SS92], [SS93]).
//
// MultiCal models a calendar as "a system of dividing the time line" and
// provides three temporal data types:
//
//   - Event: an isolated instant ("the time the option expired");
//   - Interval: a set of contiguous chronons with known endpoints
//     ("July 1993");
//   - Span: an unanchored duration with a known length but unknown position
//     ("a WEEK"), possibly of variable length ("a MONTH").
//
// plus multiple calendars (division systems) and multiple languages for
// input/output. The two proposals overlap only at variable spans: MultiCal's
// Month span captures the semantics of the paper's MONTHS calendar. What
// MultiCal does not have is an object like the nested interval list, so the
// paper's selection and foreach operators are inexpressible — the
// comparison tests make that concrete.
package multical

import (
	"fmt"
	"strings"

	"calsys/internal/chronology"
)

// Chronon is MultiCal's smallest time unit; we use one second, matching the
// main system's finest granularity.
type Chronon = int64

// Event is an isolated instant: a single chronon (epoch seconds of the host
// chronology).
type Event struct {
	At Chronon
}

// Interval is an anchored set of contiguous chronons [From, To], with
// From <= To.
type Interval struct {
	From, To Chronon
}

// NewInterval validates endpoint order (T_min <= T_max in [SS92]).
func NewInterval(from, to Chronon) (Interval, error) {
	if from > to {
		return Interval{}, fmt.Errorf("multical: interval endpoints reversed")
	}
	return Interval{From: from, To: to}, nil
}

// Contains reports whether the event falls inside the interval.
func (iv Interval) Contains(e Event) bool { return iv.From <= e.At && e.At <= iv.To }

// Overlaps reports interval intersection.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.From <= other.To && other.From <= iv.To
}

// Duration returns the interval's length as a fixed span.
func (iv Interval) Duration() Span { return Span{Seconds: iv.To - iv.From + 1} }

// Span is an unanchored duration: a fixed number of seconds plus a variable
// number of months whose length depends on where the span is anchored —
// MultiCal's "variable span" (the Month span of the Gregorian calendar).
type Span struct {
	Months  int64
	Seconds int64
}

// Add combines spans.
func (s Span) Add(other Span) Span {
	return Span{Months: s.Months + other.Months, Seconds: s.Seconds + other.Seconds}
}

// Neg negates a span.
func (s Span) Neg() Span { return Span{Months: -s.Months, Seconds: -s.Seconds} }

// Fixed reports whether the span has no variable component.
func (s Span) Fixed() bool { return s.Months == 0 }

// String renders the span.
func (s Span) String() string {
	switch {
	case s.Months != 0 && s.Seconds != 0:
		return fmt.Sprintf("%d months %d seconds", s.Months, s.Seconds)
	case s.Months != 0:
		return fmt.Sprintf("%d months", s.Months)
	default:
		return fmt.Sprintf("%d seconds", s.Seconds)
	}
}

// Common spans.
var (
	SpanSecond = Span{Seconds: 1}
	SpanMinute = Span{Seconds: 60}
	SpanHour   = Span{Seconds: 3600}
	SpanDay    = Span{Seconds: 86400}
	SpanWeek   = Span{Seconds: 7 * 86400}
	SpanMonth  = Span{Months: 1} // variable
	SpanYear   = Span{Months: 12}
)

// FieldSet is an event decomposed under a calendar's division system.
type FieldSet map[string]int

// Calendar is MultiCal's notion of calendar: a system for dividing the time
// line into named fields, with the arithmetic needed to anchor variable
// spans. Multiple calendars coexist in one calendric system.
type Calendar interface {
	// Name identifies the calendar ("gregorian", "us-fiscal").
	Name() string
	// Fields decomposes an event into the calendar's divisions.
	Fields(e Event) FieldSet
	// FromFields composes an event from divisions (missing fine fields
	// default to their minimum).
	FromFields(f FieldSet) (Event, error)
	// AddSpan anchors a (possibly variable) span at an event.
	AddSpan(e Event, s Span) Event
}

// Gregorian divides the time line into civil years, months, days, hours,
// minutes and seconds over the host chronology.
type Gregorian struct {
	Chron *chronology.Chronology
}

// Name implements Calendar.
func (Gregorian) Name() string { return "gregorian" }

// Fields implements Calendar.
func (g Gregorian) Fields(e Event) FieldSet {
	d := g.Chron.CivilOf(e.At)
	daySec := e.At - g.Chron.EpochSecondsOf(d)
	return FieldSet{
		"year": d.Year, "month": d.Month, "day": d.Day,
		"hour": int(daySec / 3600), "minute": int(daySec % 3600 / 60), "second": int(daySec % 60),
	}
}

// FromFields implements Calendar.
func (g Gregorian) FromFields(f FieldSet) (Event, error) {
	get := func(k string, def int) int {
		if v, ok := f[k]; ok {
			return v
		}
		return def
	}
	d := chronology.Civil{Year: get("year", 1970), Month: get("month", 1), Day: get("day", 1)}
	if !d.Valid() {
		return Event{}, fmt.Errorf("multical: invalid gregorian fields %v", f)
	}
	h, m, s := get("hour", 0), get("minute", 0), get("second", 0)
	if h < 0 || h > 23 || m < 0 || m > 59 || s < 0 || s > 59 {
		return Event{}, fmt.Errorf("multical: invalid time-of-day fields %v", f)
	}
	return Event{At: g.Chron.EpochSecondsOf(d) + int64(h)*3600 + int64(m)*60 + int64(s)}, nil
}

// AddSpan implements Calendar: the variable month component moves through
// civil months (clamping the day, like date arithmetic libraries), and the
// fixed component adds seconds.
func (g Gregorian) AddSpan(e Event, s Span) Event {
	at := e.At
	if s.Months != 0 {
		d := g.Chron.CivilOf(at)
		daySec := at - g.Chron.EpochSecondsOf(d)
		mi := int64(d.Year)*12 + int64(d.Month-1) + s.Months
		y, m := int(floorDiv(mi, 12)), int(floorMod(mi, 12))+1
		day := d.Day
		if dim := chronology.DaysInMonth(y, m); day > dim {
			day = dim
		}
		at = g.Chron.EpochSecondsOf(chronology.Civil{Year: y, Month: m, Day: day}) + daySec
	}
	return Event{At: at + s.Seconds}
}

// Fiscal is a second division system in the same calendric system: the US
// federal fiscal calendar, whose year n runs from October 1 of civil year
// n-1 through September 30 of civil year n. Demonstrates MultiCal's
// multiple-calendar support: the same event has different fields under
// different calendars.
type Fiscal struct {
	Chron *chronology.Chronology
}

// Name implements Calendar.
func (Fiscal) Name() string { return "us-fiscal" }

// Fields implements Calendar: fiscal year, fiscal quarter (1 = Oct-Dec) and
// fiscal month (1 = October).
func (fc Fiscal) Fields(e Event) FieldSet {
	d := fc.Chron.CivilOf(e.At)
	fy, fm := d.Year, d.Month-9
	if d.Month >= 10 {
		fy = d.Year + 1
	} else {
		fm = d.Month + 3
	}
	return FieldSet{
		"fiscal-year": fy, "fiscal-quarter": (fm-1)/3 + 1, "fiscal-month": fm, "day": d.Day,
	}
}

// FromFields implements Calendar.
func (fc Fiscal) FromFields(f FieldSet) (Event, error) {
	fy, ok := f["fiscal-year"]
	if !ok {
		return Event{}, fmt.Errorf("multical: fiscal fields need fiscal-year")
	}
	fm := 1
	if v, ok := f["fiscal-month"]; ok {
		fm = v
	}
	if fm < 1 || fm > 12 {
		return Event{}, fmt.Errorf("multical: fiscal-month %d out of range", fm)
	}
	day := 1
	if v, ok := f["day"]; ok {
		day = v
	}
	// Fiscal month 1 is October of the prior civil year.
	cm := fm + 9
	cy := fy - 1
	if cm > 12 {
		cm -= 12
		cy++
	}
	d := chronology.Civil{Year: cy, Month: cm, Day: day}
	if !d.Valid() {
		return Event{}, fmt.Errorf("multical: invalid fiscal fields %v", f)
	}
	return Event{At: fc.Chron.EpochSecondsOf(d)}, nil
}

// AddSpan implements Calendar: fiscal months are civil months shifted, so
// delegate to Gregorian arithmetic.
func (fc Fiscal) AddSpan(e Event, s Span) Event {
	return Gregorian{Chron: fc.Chron}.AddSpan(e, s)
}

// floorDiv / floorMod for month index arithmetic.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m != 0 && (m < 0) != (b < 0) {
		m += b
	}
	return m
}

// --- input/output: multiple languages and formats ------------------------

// Language selects month names for formatting — MultiCal's multi-language
// support.
type Language int

// Supported output languages.
const (
	English Language = iota
	German
	French
)

var monthNames = map[Language][]string{
	English: {"", "January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December"},
	German: {"", "Januar", "Februar", "März", "April", "Mai", "Juni",
		"Juli", "August", "September", "Oktober", "November", "Dezember"},
	French: {"", "janvier", "février", "mars", "avril", "mai", "juin",
		"juillet", "août", "septembre", "octobre", "novembre", "décembre"},
}

// FormatEvent renders an event under a calendar and language. Supported
// directives: %Y year, %m month number, %B month name, %d day, %H:%M:%S
// time of day, %f fiscal year (fiscal calendar only).
func FormatEvent(cal Calendar, lang Language, layout string, e Event) (string, error) {
	f := cal.Fields(e)
	names, ok := monthNames[lang]
	if !ok {
		return "", fmt.Errorf("multical: unsupported language %d", int(lang))
	}
	var b strings.Builder
	for i := 0; i < len(layout); i++ {
		c := layout[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(layout) {
			return "", fmt.Errorf("multical: trailing %% in layout")
		}
		switch layout[i] {
		case 'Y':
			fmt.Fprintf(&b, "%04d", f["year"])
		case 'f':
			fmt.Fprintf(&b, "%04d", f["fiscal-year"])
		case 'm':
			fmt.Fprintf(&b, "%02d", pick(f, "month", "fiscal-month"))
		case 'B':
			m := f["month"]
			if m < 1 || m > 12 {
				return "", fmt.Errorf("multical: calendar %s has no month name for %%B", cal.Name())
			}
			b.WriteString(names[m])
		case 'd':
			fmt.Fprintf(&b, "%02d", f["day"])
		case 'H':
			fmt.Fprintf(&b, "%02d", f["hour"])
		case 'M':
			fmt.Fprintf(&b, "%02d", f["minute"])
		case 'S':
			fmt.Fprintf(&b, "%02d", f["second"])
		case '%':
			b.WriteByte('%')
		default:
			return "", fmt.Errorf("multical: unknown directive %%%c", layout[i])
		}
	}
	return b.String(), nil
}

func pick(f FieldSet, keys ...string) int {
	for _, k := range keys {
		if v, ok := f[k]; ok {
			return v
		}
	}
	return 0
}

// ParseEvent reads "YYYY-MM-DD[ HH:MM:SS]" under a calendar (field names per
// the calendar's year/month division).
func ParseEvent(cal Calendar, s string) (Event, error) {
	var y, m, d, hh, mm, ss int
	n, err := fmt.Sscanf(s, "%d-%d-%d %d:%d:%d", &y, &m, &d, &hh, &mm, &ss)
	if err != nil && n < 3 {
		if n, err = fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil || n != 3 {
			return Event{}, fmt.Errorf("multical: cannot parse event %q", s)
		}
	}
	fields := FieldSet{"hour": hh, "minute": mm, "second": ss}
	if cal.Name() == "us-fiscal" {
		fields["fiscal-year"] = y
		fields["fiscal-month"] = m
		fields["day"] = d
	} else {
		fields["year"] = y
		fields["month"] = m
		fields["day"] = d
	}
	return cal.FromFields(fields)
}
