package multical

import (
	"strings"
	"testing"
	"testing/quick"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/store"
)

func chron(t testing.TB) *chronology.Chronology {
	t.Helper()
	return chronology.MustNew(chronology.DefaultEpoch)
}

func d(y, m, day int) chronology.Civil { return chronology.Civil{Year: y, Month: m, Day: day} }

func TestEventIntervalBasics(t *testing.T) {
	ch := chron(t)
	g := Gregorian{Chron: ch}
	e, err := g.FromFields(FieldSet{"year": 1993, "month": 7, "day": 15, "hour": 9, "minute": 30})
	if err != nil {
		t.Fatal(err)
	}
	f := g.Fields(e)
	if f["year"] != 1993 || f["month"] != 7 || f["day"] != 15 || f["hour"] != 9 || f["minute"] != 30 || f["second"] != 0 {
		t.Errorf("fields = %v", f)
	}
	// "July 1993" as an interval of contiguous chronons.
	lo, _ := g.FromFields(FieldSet{"year": 1993, "month": 7, "day": 1})
	hi, _ := g.FromFields(FieldSet{"year": 1993, "month": 8, "day": 1})
	july, err := NewInterval(lo.At, hi.At-1)
	if err != nil {
		t.Fatal(err)
	}
	if !july.Contains(e) {
		t.Error("July must contain July 15")
	}
	aug, _ := NewInterval(hi.At, hi.At+100)
	if july.Overlaps(aug) {
		t.Error("July must not overlap August")
	}
	if july.Duration().Seconds != 31*86400 {
		t.Errorf("July duration = %v", july.Duration())
	}
	if _, err := NewInterval(5, 1); err == nil {
		t.Error("reversed interval should fail")
	}
}

func TestSpans(t *testing.T) {
	s := SpanMonth.Add(SpanWeek)
	if s.Months != 1 || s.Seconds != 7*86400 || s.Fixed() {
		t.Errorf("combined span = %v", s)
	}
	if !SpanDay.Fixed() {
		t.Error("a day is fixed")
	}
	if s.Neg().Months != -1 {
		t.Error("negation")
	}
	if SpanMonth.String() != "1 months" || SpanDay.String() != "86400 seconds" {
		t.Errorf("span strings: %q %q", SpanMonth.String(), SpanDay.String())
	}
	if s.String() != "1 months 604800 seconds" {
		t.Errorf("mixed span string: %q", s.String())
	}
}

// The variable Month span: Jan 31 + 1 month clamps to Feb 28, exactly the
// semantics MultiCal attributes to the Gregorian calendar's variable spans
// — and the place §5 says the two proposals overlap.
func TestVariableSpanArithmetic(t *testing.T) {
	ch := chron(t)
	g := Gregorian{Chron: ch}
	jan31 := Event{At: ch.EpochSecondsOf(d(1993, 1, 31))}
	feb := g.AddSpan(jan31, SpanMonth)
	if got := ch.CivilOf(feb.At); got != d(1993, 2, 28) {
		t.Errorf("Jan 31 + 1 month = %v", got)
	}
	leap := g.AddSpan(Event{At: ch.EpochSecondsOf(d(1988, 1, 31))}, SpanMonth)
	if got := ch.CivilOf(leap.At); got != d(1988, 2, 29) {
		t.Errorf("leap clamp = %v", got)
	}
	// A year is 12 variable months.
	y := g.AddSpan(jan31, SpanYear)
	if got := ch.CivilOf(y.At); got != d(1994, 1, 31) {
		t.Errorf("Jan 31 + 1 year = %v", got)
	}
	// Fixed spans preserve time of day.
	e := g.AddSpan(Event{At: 3600}, SpanDay)
	if e.At != 86400+3600 {
		t.Errorf("fixed day add = %d", e.At)
	}
	// Negative months.
	back := g.AddSpan(jan31, Span{Months: -2})
	if got := ch.CivilOf(back.At); got != d(1992, 11, 30) {
		t.Errorf("Jan 31 - 2 months = %v", got)
	}
}

func TestSpanRoundTripProperty(t *testing.T) {
	ch := chron(t)
	g := Gregorian{Chron: ch}
	f := func(daySec uint32, months int8) bool {
		e := Event{At: int64(daySec)}
		// Anchor on a day <= 28 so the clamp never loses information.
		fields := g.Fields(e)
		if fields["day"] > 28 {
			return true
		}
		s := Span{Months: int64(months)}
		back := g.AddSpan(g.AddSpan(e, s), s.Neg())
		return back == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// MultiCal's core feature: the same event has different field values under
// different division systems of the same calendric system.
func TestMultipleCalendars(t *testing.T) {
	ch := chron(t)
	g := Gregorian{Chron: ch}
	fc := Fiscal{Chron: ch}
	e, _ := g.FromFields(FieldSet{"year": 1993, "month": 11, "day": 5})
	gf, ff := g.Fields(e), fc.Fields(e)
	if gf["year"] != 1993 || gf["month"] != 11 {
		t.Errorf("gregorian fields = %v", gf)
	}
	// November 1993 is fiscal month 2 of fiscal year 1994, fiscal Q1.
	if ff["fiscal-year"] != 1994 || ff["fiscal-month"] != 2 || ff["fiscal-quarter"] != 1 {
		t.Errorf("fiscal fields = %v", ff)
	}
	// And a spring event: April 1993 is fiscal month 7 of FY 1993, Q3.
	e2, _ := g.FromFields(FieldSet{"year": 1993, "month": 4, "day": 1})
	ff2 := fc.Fields(e2)
	if ff2["fiscal-year"] != 1993 || ff2["fiscal-month"] != 7 || ff2["fiscal-quarter"] != 3 {
		t.Errorf("spring fiscal fields = %v", ff2)
	}
	// FromFields round trip through the fiscal division.
	back, err := fc.FromFields(ff)
	if err != nil {
		t.Fatal(err)
	}
	if ch.CivilOf(back.At) != d(1993, 11, 5) {
		t.Errorf("fiscal round trip = %v", ch.CivilOf(back.At))
	}
}

func TestFiscalGregorianAgreeProperty(t *testing.T) {
	ch := chron(t)
	fc := Fiscal{Chron: ch}
	f := func(off int32) bool {
		e := Event{At: int64(off) * 86400}
		ff := fc.Fields(e)
		back, err := fc.FromFields(ff)
		if err != nil {
			return false
		}
		// Day-resolution round trip (fiscal fields carry no time of day).
		return ch.CivilOf(back.At) == ch.CivilOf(e.At)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Multi-language output — MultiCal's I/O focus.
func TestMultiLanguageFormatting(t *testing.T) {
	ch := chron(t)
	g := Gregorian{Chron: ch}
	e, _ := g.FromFields(FieldSet{"year": 1993, "month": 3, "day": 7, "hour": 14, "minute": 5, "second": 9})
	cases := []struct {
		lang   Language
		layout string
		want   string
	}{
		{English, "%d %B %Y", "07 March 1993"},
		{German, "%d. %B %Y", "07. März 1993"},
		{French, "%d %B %Y", "07 mars 1993"},
		{English, "%Y-%m-%d %H:%M:%S", "1993-03-07 14:05:09"},
		{English, "100%%", "100%"},
	}
	for _, tc := range cases {
		got, err := FormatEvent(g, tc.lang, tc.layout, e)
		if err != nil {
			t.Errorf("%q: %v", tc.layout, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q = %q, want %q", tc.layout, got, tc.want)
		}
	}
	fc := Fiscal{Chron: ch}
	got, err := FormatEvent(fc, English, "FY%f M%m", e)
	if err != nil || got != "FY1993 M06" { // March = fiscal month 6
		t.Errorf("fiscal format = %q, %v", got, err)
	}
	if _, err := FormatEvent(fc, English, "%B", e); err == nil {
		t.Error("fiscal calendar has no month names")
	}
	if _, err := FormatEvent(g, English, "%Q", e); err == nil {
		t.Error("unknown directive should fail")
	}
	if _, err := FormatEvent(g, English, "dangling %", e); err == nil {
		t.Error("trailing %% should fail")
	}
	if _, err := FormatEvent(g, Language(99), "%Y", e); err == nil {
		t.Error("unknown language should fail")
	}
}

func TestParseEvent(t *testing.T) {
	ch := chron(t)
	g := Gregorian{Chron: ch}
	e, err := ParseEvent(g, "1993-07-15")
	if err != nil || ch.CivilOf(e.At) != d(1993, 7, 15) {
		t.Errorf("parse date: %v, %v", e, err)
	}
	e, err = ParseEvent(g, "1993-07-15 09:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if f := g.Fields(e); f["hour"] != 9 || f["minute"] != 30 {
		t.Errorf("parsed time fields = %v", f)
	}
	fc := Fiscal{Chron: ch}
	// Fiscal 1994-02-05 = November 5 1993.
	e, err = ParseEvent(fc, "1994-02-05")
	if err != nil || ch.CivilOf(e.At) != d(1993, 11, 5) {
		t.Errorf("fiscal parse = %v, %v", ch.CivilOf(e.At), err)
	}
	if _, err := ParseEvent(g, "not a date"); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ParseEvent(g, "1993-02-30"); err == nil {
		t.Error("invalid date should fail")
	}
}

// The §5 comparison made executable.
//
// (1) Where the proposals overlap: MultiCal's variable Month span agrees
// with the main system's MONTHS calendar — stepping an event month by month
// lands on the same month boundaries the MONTHS calendar generates.
func TestOverlapWithCalendarSystem(t *testing.T) {
	ch := chron(t)
	mgr, err := caldb.New(store.NewDB(), ch)
	if err != nil {
		t.Fatal(err)
	}
	// First day of every month of 1993, in day ticks.
	monthStarts, err := mgr.EvalExpr("[1]/DAYS:during:MONTHS", d(1993, 1, 1), d(1993, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	g := Gregorian{Chron: ch}
	e, _ := g.FromFields(FieldSet{"year": 1993, "month": 1, "day": 1})
	for i, iv := range monthStarts.Flatten().Intervals() {
		if got := ch.TickAt(chronology.Day, e.At); got != iv.Lo {
			t.Errorf("month %d: span-stepped start %d != calendar start %d", i, got, iv.Lo)
		}
		e = g.AddSpan(e, SpanMonth)
	}
}

// (2) Where they differ: "the third Friday of every month" is a one-line
// nested-interval-list expression in the paper's system; in MultiCal there
// is no such object, and the computation must be hand-coded against
// events/spans. Both routes must agree — and the hand-coded route is the
// baseline's cost.
func TestThirdFridayExpressibility(t *testing.T) {
	ch := chron(t)
	mgr, err := caldb.New(store.NewDB(), ch)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's system: one expression.
	cal, err := mgr.EvalExpr("[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS",
		d(1993, 1, 1), d(1993, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	var algebra []chronology.Civil
	for _, iv := range cal.Flatten().Intervals() {
		algebra = append(algebra, ch.CivilOfDayTick(iv.Lo))
	}

	// MultiCal: hand-rolled iteration over events and spans.
	g := Gregorian{Chron: ch}
	var manual []chronology.Civil
	cursor, _ := g.FromFields(FieldSet{"year": 1993, "month": 1, "day": 1})
	for m := 0; m < 12; m++ {
		fridays := 0
		e := cursor
		for {
			day := ch.CivilOf(e.At)
			if day.Weekday() == chronology.Friday {
				fridays++
				if fridays == 3 {
					manual = append(manual, day)
					break
				}
			}
			e = g.AddSpan(e, SpanDay)
		}
		cursor = g.AddSpan(cursor, SpanMonth)
	}

	if len(algebra) != 12 || len(manual) != 12 {
		t.Fatalf("algebra %d, manual %d third Fridays", len(algebra), len(manual))
	}
	for i := range algebra {
		if algebra[i] != manual[i] {
			t.Errorf("month %d: algebra %v != manual %v", i+1, algebra[i], manual[i])
		}
	}
	if !strings.Contains("[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS", "WEEKS") {
		t.Fatal("sanity")
	}
}
