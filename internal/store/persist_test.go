package store

import (
	"strings"
	"testing"
	"testing/quick"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

func snapshotRoundTrip(t *testing.T, db *DB) *DB {
	t.Helper()
	var buf strings.Builder
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewDB()
	if err := fresh.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("Load: %v\nsnapshot:\n%s", err, buf.String())
	}
	return fresh
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDB()
	schema := mustSchema(t,
		Column{"name", TText}, Column{"day", TDate}, Column{"score", TFloat},
		Column{"n", TInt}, Column{"ok", TBool}, Column{"span", TInterval},
		Column{"cal", TCalendar})
	if err := db.CreateTable("everything", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("everything", "n"); err != nil {
		t.Fatal(err)
	}
	cal := calendar.MustFromIntervals(chronology.Day, interval.Must(-4, 3), interval.Must(4, 10))
	if err := db.RunTxn(func(tx *Txn) error {
		rows := []Row{
			{NewText("plain"), NewText("1993-01-15"), NewFloat(2.5), NewInt(-7), NewBool(true),
				NewInterval(interval.Must(1, 31)), NewCalendar(cal)},
			{NewText("tricky % { } \n text"), NewText("1988-02-29"), NewFloat(0), NewInt(0), NewBool(false),
				NewInterval(interval.Must(-10, -1)), Value{T: TCalendar}},
			{Null, Null, Null, Null, Null, Null, Null},
		}
		for _, r := range rows {
			if _, err := tx.Append("everything", r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	fresh := snapshotRoundTrip(t, db)
	tab, ok := fresh.Table("everything")
	if !ok || tab.Len() != 3 {
		t.Fatalf("restored table missing or wrong size")
	}
	if !tab.HasIndex("n") {
		t.Error("index not restored")
	}
	orig, _ := db.Table("everything")
	orig.Scan(func(rid int64, row Row) bool {
		got, ok := tab.Get(rid)
		if !ok {
			t.Errorf("row %d missing after restore", rid)
			return true
		}
		for i := range row {
			if !Equal(row[i], got[i]) {
				t.Errorf("row %d col %d: %v != %v", rid, i, row[i], got[i])
			}
		}
		return true
	})
	// The restored index works.
	rids, err := tab.LookupEq("n", NewInt(-7))
	if err != nil || len(rids) != 1 {
		t.Errorf("restored index lookup: %v, %v", rids, err)
	}
}

func TestSnapshotMultipleTables(t *testing.T) {
	db := NewDB()
	for _, name := range []string{"a", "b", "c"} {
		if err := db.CreateTable(name, mustSchema(t, Column{"v", TInt})); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RunTxn(func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.Append("b", Row{NewInt(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	fresh := snapshotRoundTrip(t, db)
	if len(fresh.TableNames()) != 3 {
		t.Errorf("tables = %v", fresh.TableNames())
	}
	tb, _ := fresh.Table("b")
	if tb.Len() != 5 {
		t.Errorf("b rows = %d", tb.Len())
	}
	ta, _ := fresh.Table("a")
	if ta.Len() != 0 {
		t.Errorf("a rows = %d", ta.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad magic":       "nope 9",
		"empty":           "",
		"truncated table": "calsysdb 1\ntable t 1\ncol v int\nrow int:1",
		"bad col count":   "calsysdb 1\ntable t x\n",
		"bad field":       "calsysdb 1\ntable t 1\ncol v int\nrow int:abc\nend",
		"wrong arity":     "calsysdb 1\ntable t 2\ncol v int\nend",
		"unknown type":    "calsysdb 1\ntable t 1\ncol v blob\nend",
		"stray line":      "calsysdb 1\ntable t 1\ncol v int\nfrobnicate\nend",
		"bad escape":      "calsysdb 1\ntable t 1\ncol v text\nrow text:%zz\nend",
		"bad date":        "calsysdb 1\ntable t 1\ncol v date\nrow date:1993-02-30\nend",
		"bad interval":    "calsysdb 1\ntable t 1\ncol v interval\nrow interval:5\nend",
		"zero interval":   "calsysdb 1\ntable t 1\ncol v interval\nrow interval:0,3\nend",
		"bad calendar":    "calsysdb 1\ntable t 1\ncol v calendar\nrow calendar:DAYSoops\nend",
	}
	for name, snap := range cases {
		db := NewDB()
		if err := db.Load(strings.NewReader(snap)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
	// Load requires an empty database.
	db := NewDB()
	if err := db.CreateTable("t", Schema{Cols: []Column{{Name: "v", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(strings.NewReader("calsysdb 1\n")); err == nil {
		t.Error("Load into non-empty database should fail")
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		got, err := unescape(escape(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Escaped strings never contain whitespace or structural characters.
	g := func(s string) bool {
		e := escape(s)
		return !strings.ContainsAny(e, " \t\n{}")
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueEncodeDecodeProperty(t *testing.T) {
	f := func(kind uint8, n int64, fl float64, s string, b bool) bool {
		var v Value
		switch kind % 6 {
		case 0:
			v = NewInt(n)
		case 1:
			v = NewFloat(fl)
		case 2:
			v = NewText(s)
		case 3:
			v = NewBool(b)
		case 4:
			v = Null
		case 5:
			lo := n % 10000
			if lo == 0 {
				lo = 1
			}
			hi := lo + int64(kind)
			if lo < 0 && hi >= 0 {
				hi = -1
			}
			iv, err := interval.New(lo, hi)
			if err != nil {
				return true // skip invalid
			}
			v = NewInterval(iv)
		}
		enc, err := encodeValue(v)
		if err != nil {
			return false
		}
		dec, err := decodeValue(enc)
		if err != nil {
			return false
		}
		if v.T == TFloat {
			return dec.T == TFloat && (dec.F == v.F || (dec.F != dec.F && v.F != v.F)) // NaN-safe
		}
		return Equal(v, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCalendarValueRoundTrip(t *testing.T) {
	// Order-2 calendars survive encoding.
	sub1 := calendar.MustFromIntervals(chronology.Week, interval.Must(1, 4))
	sub2 := calendar.MustFromIntervals(chronology.Week, interval.Must(5, 8), interval.Must(9, 9))
	o2, err := calendar.FromSubs([]*calendar.Calendar{sub1, sub2})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encodeValue(NewCalendar(o2))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Cal.Equal(o2) {
		t.Errorf("round trip: %v != %v", dec.Cal, o2)
	}
	if dec.Cal.Granularity() != chronology.Week {
		t.Errorf("granularity = %v", dec.Cal.Granularity())
	}
}
