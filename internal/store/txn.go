package store

import "fmt"

// Txn is a serializable transaction: it holds the database's transaction
// lock for its lifetime and keeps an undo log so Rollback restores the exact
// prior state. Event listeners (the rule system) run inside the transaction;
// their own mutations join the same undo log.
type Txn struct {
	db    *DB
	undo  []undoRec
	done  bool
	depth int // listener recursion depth
}

type undoKind int

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
)

type undoRec struct {
	kind  undoKind
	table *Table
	rid   int64
	old   Row
}

// maxListenerDepth bounds rule-triggering-rule recursion.
const maxListenerDepth = 8

// Begin starts a transaction, blocking until the database is free.
func (db *DB) Begin() *Txn {
	db.txnMu.Lock()
	return &Txn{db: db}
}

// Commit makes the transaction's effects permanent.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("store: transaction already finished")
	}
	tx.done = true
	tx.undo = nil
	tx.db.txnMu.Unlock()
	return nil
}

// Rollback undoes every effect of the transaction.
func (tx *Txn) Rollback() error {
	if tx.done {
		return fmt.Errorf("store: transaction already finished")
	}
	tx.done = true
	for i := len(tx.undo) - 1; i >= 0; i-- {
		r := tx.undo[i]
		switch r.kind {
		case undoInsert:
			_, _ = r.table.deleteRaw(r.rid)
		case undoDelete:
			r.table.restoreRaw(r.rid, r.old)
		case undoUpdate:
			_, _ = r.table.updateRaw(r.rid, r.old)
		}
	}
	tx.undo = nil
	tx.db.txnMu.Unlock()
	return nil
}

func (tx *Txn) table(name string) (*Table, error) {
	t, ok := tx.db.Table(name)
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

func (tx *Txn) fire(ev Event) error {
	tx.db.catMu.RLock()
	listeners := make([]EventListener, len(tx.db.listeners))
	copy(listeners, tx.db.listeners)
	tx.db.catMu.RUnlock()
	if len(listeners) == 0 {
		return nil
	}
	if tx.depth >= maxListenerDepth {
		return fmt.Errorf("store: rule recursion deeper than %d", maxListenerDepth)
	}
	tx.depth++
	defer func() { tx.depth-- }()
	for _, l := range listeners {
		if err := l(tx, ev); err != nil {
			return err
		}
	}
	return nil
}

// Append inserts a row, firing append events.
func (tx *Txn) Append(table string, row Row) (int64, error) {
	if tx.done {
		return 0, fmt.Errorf("store: transaction already finished")
	}
	t, err := tx.table(table)
	if err != nil {
		return 0, err
	}
	validated, err := t.validateRow(row)
	if err != nil {
		return 0, err
	}
	rid, err := t.insertRaw(validated)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, table: t, rid: rid})
	if err := tx.fire(Event{Op: EvAppend, Table: t.Name, RID: rid, New: validated}); err != nil {
		return 0, err
	}
	return rid, nil
}

// Delete removes a row, firing delete events.
func (tx *Txn) Delete(table string, rid int64) error {
	if tx.done {
		return fmt.Errorf("store: transaction already finished")
	}
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	old, err := t.deleteRaw(rid)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoDelete, table: t, rid: rid, old: old})
	return tx.fire(Event{Op: EvDelete, Table: t.Name, RID: rid, Old: old})
}

// Replace updates a row in place, firing replace events.
func (tx *Txn) Replace(table string, rid int64, row Row) error {
	if tx.done {
		return fmt.Errorf("store: transaction already finished")
	}
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	validated, err := t.validateRow(row)
	if err != nil {
		return err
	}
	old, err := t.updateRaw(rid, validated)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoUpdate, table: t, rid: rid, old: old.Clone()})
	return tx.fire(Event{Op: EvReplace, Table: t.Name, RID: rid, New: validated, Old: old})
}

// Retrieve reads rows matching the filter (nil = all), firing retrieve
// events per row delivered.
func (tx *Txn) Retrieve(table string, filter func(Row) bool, visit func(rid int64, row Row) bool) error {
	if tx.done {
		return fmt.Errorf("store: transaction already finished")
	}
	t, err := tx.table(table)
	if err != nil {
		return err
	}
	var fireErr error
	t.Scan(func(rid int64, row Row) bool {
		if filter != nil && !filter(row) {
			return true
		}
		if err := tx.fire(Event{Op: EvRetrieve, Table: t.Name, RID: rid, Old: row}); err != nil {
			fireErr = err
			return false
		}
		return visit(rid, row)
	})
	return fireErr
}

// Get reads one row by id without firing events.
func (tx *Txn) Get(table string, rid int64) (Row, bool, error) {
	t, err := tx.table(table)
	if err != nil {
		return nil, false, err
	}
	row, ok := t.Get(rid)
	return row, ok, nil
}

// RunTxn executes fn in a transaction, committing on nil error and rolling
// back otherwise.
func (db *DB) RunTxn(fn func(tx *Txn) error) error {
	tx := db.Begin()
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}
