// Package store implements the extensible-database substrate that plays the
// role POSTGRES plays in the paper: typed heap tables with B-tree indexes, a
// catalog, undo-logged transactions, and — the extensibility hooks the
// calendar system needs — user-defined types (calendar, interval, date) and
// a registry of user-defined functions and operators usable from queries.
package store

import (
	"fmt"
	"strconv"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Type identifies a column type. Calendar, Interval and Date are the
// "complex data types" of the paper's §1: they are first-class column types
// with registered operators.
type Type int

// Column types.
const (
	TNull Type = iota
	TInt
	TFloat
	TText
	TBool
	TDate     // a civil date
	TInterval // a tick interval
	TCalendar // a calendar ADT value
)

var typeNames = [...]string{
	TNull: "null", TInt: "int", TFloat: "float", TText: "text",
	TBool: "bool", TDate: "date", TInterval: "interval", TCalendar: "calendar",
}

// String names the type.
func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// ParseType resolves a type name.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if n == strings.ToLower(strings.TrimSpace(s)) && i != int(TNull) {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("store: unknown type %q", s)
}

// Value is a dynamically typed cell value.
type Value struct {
	T   Type
	I   int64
	F   float64
	S   string
	B   bool
	D   chronology.Civil
	Iv  interval.Interval
	Cal *calendar.Calendar
}

// Null is the SQL-ish null value.
var Null = Value{T: TNull}

// NewInt builds an int value.
func NewInt(v int64) Value { return Value{T: TInt, I: v} }

// NewFloat builds a float value.
func NewFloat(v float64) Value { return Value{T: TFloat, F: v} }

// NewText builds a text value.
func NewText(v string) Value { return Value{T: TText, S: v} }

// NewBool builds a bool value.
func NewBool(v bool) Value { return Value{T: TBool, B: v} }

// NewDate builds a date value.
func NewDate(v chronology.Civil) Value { return Value{T: TDate, D: v} }

// NewInterval builds an interval value.
func NewInterval(v interval.Interval) Value { return Value{T: TInterval, Iv: v} }

// NewCalendar builds a calendar value.
func NewCalendar(v *calendar.Calendar) Value { return Value{T: TCalendar, Cal: v} }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.T == TNull }

// String renders the value for display.
func (v Value) String() string {
	switch v.T {
	case TNull:
		return "null"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TText:
		return v.S
	case TBool:
		return strconv.FormatBool(v.B)
	case TDate:
		return v.D.String()
	case TInterval:
		return v.Iv.String()
	case TCalendar:
		if v.Cal == nil {
			return "{}"
		}
		return v.Cal.String()
	}
	return fmt.Sprintf("?%d", int(v.T))
}

// Compare orders two values of the same type: -1, 0 or 1. Null sorts before
// everything; comparing incompatible types is an error. Calendars are not
// ordered.
func Compare(a, b Value) (int, error) {
	if a.T == TNull || b.T == TNull {
		switch {
		case a.T == TNull && b.T == TNull:
			return 0, nil
		case a.T == TNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	// Int and float compare numerically with each other.
	if (a.T == TInt || a.T == TFloat) && (b.T == TInt || b.T == TFloat) {
		af, bf := a.asFloat(), b.asFloat()
		if a.T == TInt && b.T == TInt {
			return cmpInt(a.I, b.I), nil
		}
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.T != b.T {
		return 0, fmt.Errorf("store: cannot compare %v with %v", a.T, b.T)
	}
	switch a.T {
	case TText:
		return strings.Compare(a.S, b.S), nil
	case TBool:
		x, y := 0, 0
		if a.B {
			x = 1
		}
		if b.B {
			y = 1
		}
		return cmpInt(int64(x), int64(y)), nil
	case TDate:
		return cmpInt(a.D.Rata(), b.D.Rata()), nil
	case TInterval:
		if c := cmpInt(a.Iv.Lo, b.Iv.Lo); c != 0 {
			return c, nil
		}
		return cmpInt(a.Iv.Hi, b.Iv.Hi), nil
	}
	return 0, fmt.Errorf("store: type %v is not ordered", a.T)
}

func (v Value) asFloat() float64 {
	if v.T == TInt {
		return float64(v.I)
	}
	return v.F
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality; unlike Compare it also handles calendars
// (structural equality).
func Equal(a, b Value) bool {
	if a.T == TCalendar || b.T == TCalendar {
		if a.T != b.T {
			return false
		}
		return a.Cal.Equal(b.Cal)
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// CoerceTo converts a value to a column type where a lossless conversion
// exists (int→float, text→date).
func (v Value) CoerceTo(t Type) (Value, error) {
	if v.T == t || v.T == TNull {
		return v, nil
	}
	switch {
	case v.T == TInt && t == TFloat:
		return NewFloat(float64(v.I)), nil
	case v.T == TText && t == TDate:
		d, err := chronology.ParseCivil(v.S)
		if err != nil {
			return Null, err
		}
		return NewDate(d), nil
	}
	return Null, fmt.Errorf("store: cannot coerce %v to %v", v.T, t)
}
