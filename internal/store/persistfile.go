package store

import (
	"fmt"
	"os"
	"path/filepath"

	"calsys/internal/faultinject"
)

// Fault-injection sites in file persistence.
const (
	// SiteSaveWrite is hit after the temp snapshot is written but before it
	// is fsynced — a crash here must leave the previous snapshot intact.
	SiteSaveWrite = "store.save.write"
	// SiteSaveRename is hit before the temp file is renamed over the
	// target — the commit point of SaveFile.
	SiteSaveRename = "store.save.rename"
)

// SaveFile writes a snapshot to path atomically: the dump goes to a temp
// file in the same directory, is fsynced, and is renamed over the target,
// so a crash at any point leaves either the old snapshot or the new one —
// never a torn file. faults may be nil.
func (db *DB) SaveFile(path string, faults *faultinject.Injector) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	if err := db.Save(tmp); err != nil {
		return fail(err)
	}
	if err := faultinject.Hit(faults, SiteSaveWrite); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	if err := faultinject.Hit(faults, SiteSaveRename); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	// Persist the rename itself; without the directory fsync the new name
	// may not survive a power loss.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile loads a snapshot previously written by SaveFile (or Save).
func (db *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: load %s: %w", path, err)
	}
	defer f.Close()
	if err := db.Load(f); err != nil {
		return fmt.Errorf("store: load %s: %w", path, err)
	}
	return nil
}
