package store

import (
	"fmt"
	"sync"
	"testing"
)

// Concurrent transactions are serialized by the transaction lock; every
// committed append survives and rolled-back ones vanish, regardless of
// interleaving.
func TestConcurrentTransactions(t *testing.T) {
	db := NewDB()
	schema := mustSchema(t, Column{"who", TText}, Column{"n", TInt})
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				commit := i%2 == 0
				err := func() error {
					tx := db.Begin()
					if _, err := tx.Append("t", Row{NewText(fmt.Sprintf("w%d", w)), NewInt(int64(i))}); err != nil {
						_ = tx.Rollback()
						return err
					}
					if commit {
						return tx.Commit()
					}
					return tx.Rollback()
				}()
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")
	if tab.Len() != workers*perWorker/2 {
		t.Errorf("rows = %d, want %d", tab.Len(), workers*perWorker/2)
	}
}

// Concurrent readers (outside transactions) interleave with writers without
// panics or lost rows; the race detector validates memory safety.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := NewDB()
	schema := mustSchema(t, Column{"n", TInt})
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "n"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := db.RunTxn(func(tx *Txn) error {
				_, err := tx.Append("t", Row{NewInt(int64(i))})
				return err
			}); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Reads go through their own short transactions.
				_ = db.RunTxn(func(tx *Txn) error {
					return tx.Retrieve("t", nil, func(int64, Row) bool { return true })
				})
			}
		}()
	}
	wg.Wait()
	tab, _ := db.Table("t")
	if tab.Len() != 200 {
		t.Errorf("rows = %d", tab.Len())
	}
}

// Registering functions and listeners concurrently with transactions is
// safe (catalog lock is separate from the transaction lock).
func TestConcurrentCatalogAccess(t *testing.T) {
	db := NewDB()
	schema := mustSchema(t, Column{"n", TInt})
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = db.RegisterFunc(UserFunc{
				Name: fmt.Sprintf("f%d", i), MinArgs: 0, MaxArgs: 0,
				Fn: func([]Value) (Value, error) { return Null, nil },
			})
			_, _ = db.Func(fmt.Sprintf("f%d", i/2))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = db.RunTxn(func(tx *Txn) error {
				_, err := tx.Append("t", Row{NewInt(int64(i))})
				return err
			})
		}
	}()
	wg.Wait()
	tab, _ := db.Table("t")
	if tab.Len() != 100 {
		t.Errorf("rows = %d", tab.Len())
	}
}
