package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calsys/internal/faultinject"
)

// TestLoadErrorsArePositioned checks that every corruption class reports
// the snapshot line it was found on plus what was expected — the
// operator-facing contract of the hardened loader.
func TestLoadErrorsArePositioned(t *testing.T) {
	cases := []struct {
		name string
		snap string
		want []string // substrings the error must carry
	}{
		{
			"bad magic",
			"nope 9\n",
			[]string{"line 1", "magic"},
		},
		{
			"empty file",
			"",
			[]string{"line 1", "magic"},
		},
		{
			"not a table header",
			"calsysdb 1\ncol v int\n",
			[]string{"line 2", "table <name> <ncols>"},
		},
		{
			"bad column count",
			"calsysdb 1\ntable t x\n",
			[]string{"line 2", "column count", "positive integer"},
		},
		{
			"arity mismatch",
			"calsysdb 1\ntable t 2\ncol v int\nend\n",
			[]string{"line 4", "declares 1 cols, header said 2"},
		},
		{
			"row arity",
			"calsysdb 1\ntable t 2\ncol a int\ncol b int\nrow int:1\nend\n",
			[]string{"line 5", "row has 1 fields, want 2"},
		},
		{
			"bad field payload",
			"calsysdb 1\ntable t 1\ncol v int\nrow int:abc\nend\n",
			[]string{"line 4", "field 1"},
		},
		{
			"stray line",
			"calsysdb 1\ntable t 1\ncol v int\nfrobnicate\nend\n",
			[]string{"line 4", "frobnicate", "col/index/row/end"},
		},
		{
			"col after rows",
			"calsysdb 1\ntable t 1\ncol v int\nrow int:1\ncol w int\nend\n",
			[]string{"line 5", "after rows"},
		},
		{
			"truncated table",
			"calsysdb 1\ntable t 1\ncol v int\nrow int:1",
			[]string{"line 4", "not terminated", "truncated"},
		},
		{
			"unknown type",
			"calsysdb 1\ntable t 1\ncol v blob\nend\n",
			[]string{"line 3"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := NewDB()
			err := db.Load(strings.NewReader(tc.snap))
			if err == nil {
				t.Fatal("Load should fail")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

func seedDB(t *testing.T, rows ...int64) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable("t", Schema{Cols: []Column{{Name: "v", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.RunTxn(func(tx *Txn) error {
		for _, v := range rows {
			if _, err := tx.Append("t", Row{NewInt(v)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func rowsOf(t *testing.T, db *DB) []int64 {
	t.Helper()
	tab, ok := db.Table("t")
	if !ok {
		t.Fatal("table t missing")
	}
	var out []int64
	tab.Scan(func(_ int64, row Row) bool {
		out = append(out, row[0].I)
		return true
	})
	return out
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := seedDB(t, 1, 2, 3).SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	fresh := NewDB()
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got := rowsOf(t, fresh); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("rows = %v", got)
	}
}

// TestSaveFileCrashKeepsOldSnapshot proves SaveFile's atomicity: a crash
// before the fsync or before the rename must leave the previous snapshot
// readable and no temp litter behind.
func TestSaveFileCrashKeepsOldSnapshot(t *testing.T) {
	for _, site := range []string{SiteSaveWrite, SiteSaveRename} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "snap.db")
			if err := seedDB(t, 10).SaveFile(path, nil); err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New(1)
			inj.CrashAt(site, 1)
			err := seedDB(t, 10, 20).SaveFile(path, inj)
			if !faultinject.IsCrash(err) {
				t.Fatalf("err = %v, want injected crash", err)
			}
			old := NewDB()
			if err := old.LoadFile(path); err != nil {
				t.Fatalf("old snapshot unreadable after crashed save: %v", err)
			}
			if got := rowsOf(t, old); len(got) != 1 || got[0] != 10 {
				t.Errorf("old snapshot rows = %v", got)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 1 {
				t.Errorf("temp litter left behind: %v", ents)
			}
		})
	}
}

func TestLoadFileMissing(t *testing.T) {
	db := NewDB()
	if err := db.LoadFile(filepath.Join(t.TempDir(), "nope.db")); err == nil {
		t.Error("LoadFile of missing path should fail")
	}
}
