package store

import "fmt"

// btreeDegree is the minimum degree t of the B-tree: every node except the
// root holds between t-1 and 2t-1 keys.
const btreeDegree = 16

// BTree is an ordered multi-map from Value keys to row ids, used for
// secondary indexes. Duplicate keys are supported; each key holds the set of
// row ids carrying it.
type BTree struct {
	root *btreeNode
	size int // number of (key,rid) pairs
}

type btreeEntry struct {
	key  Value
	rids []int64
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

// NewBTree returns an empty index.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{}}
}

// Len returns the number of (key, rowid) pairs.
func (t *BTree) Len() int { return t.size }

func (n *btreeNode) leaf() bool { return n.children == nil }

// findKey locates key within a node: the index of the first entry >= key and
// whether it is an exact match. Comparison errors cannot occur because an
// index holds one type.
func (n *btreeNode) findKey(key Value) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		c, _ := Compare(n.entries[mid].key, key)
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) {
		if c, _ := Compare(n.entries[lo].key, key); c == 0 {
			return lo, true
		}
	}
	return lo, false
}

// Insert adds a (key, rid) pair.
func (t *BTree) Insert(key Value, rid int64) error {
	if key.T == TCalendar {
		return fmt.Errorf("store: calendar values are not indexable")
	}
	if len(t.root.entries) == 2*btreeDegree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(key, rid)
	t.size++
	return nil
}

func (n *btreeNode) insertNonFull(key Value, rid int64) {
	i, exact := n.findKey(key)
	if exact {
		n.entries[i].rids = append(n.entries[i].rids, rid)
		return
	}
	if n.leaf() {
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = btreeEntry{key: key, rids: []int64{rid}}
		return
	}
	if len(n.children[i].entries) == 2*btreeDegree-1 {
		n.splitChild(i)
		if c, _ := Compare(n.entries[i].key, key); c == 0 {
			n.entries[i].rids = append(n.entries[i].rids, rid)
			return
		} else if c < 0 {
			i++
		}
	}
	n.children[i].insertNonFull(key, rid)
}

// splitChild splits the full child at index i, hoisting its median entry.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeDegree - 1
	medianEntry := child.entries[mid]

	right := &btreeNode{}
	right.entries = append(right.entries, child.entries[mid+1:]...)
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = medianEntry
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Lookup returns the row ids stored under key (nil when absent). The slice
// is shared; callers must not modify it.
func (t *BTree) Lookup(key Value) []int64 {
	n := t.root
	for {
		i, exact := n.findKey(key)
		if exact {
			return n.entries[i].rids
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Delete removes one (key, rid) pair, reporting whether it was present.
// When a key's last rid is removed the key itself is deleted with standard
// B-tree rebalancing.
func (t *BTree) Delete(key Value, rid int64) bool {
	n := t.root
	// First remove rid from the key's rid set, wherever it is.
	var holder *btreeEntry
	for {
		i, exact := n.findKey(key)
		if exact {
			holder = &n.entries[i]
			break
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	found := false
	for j, r := range holder.rids {
		if r == rid {
			holder.rids = append(holder.rids[:j], holder.rids[j+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	t.size--
	if len(holder.rids) > 0 {
		return true
	}
	t.root.deleteKey(key)
	if len(t.root.entries) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	return true
}

// deleteKey removes an (empty-rid) key from the subtree, keeping B-tree
// invariants (CLR-style delete with borrow/merge).
func (n *btreeNode) deleteKey(key Value) {
	i, exact := n.findKey(key)
	if exact {
		if n.leaf() {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return
		}
		// Replace with predecessor or successor, then recurse.
		if len(n.children[i].entries) >= btreeDegree {
			pred := n.children[i].maxEntry()
			n.entries[i] = pred
			n.children[i].deleteKey(pred.key)
			return
		}
		if len(n.children[i+1].entries) >= btreeDegree {
			succ := n.children[i+1].minEntry()
			n.entries[i] = succ
			n.children[i+1].deleteKey(succ.key)
			return
		}
		n.mergeChildren(i)
		n.children[i].deleteKey(key)
		return
	}
	if n.leaf() {
		return // key not present
	}
	if len(n.children[i].entries) < btreeDegree {
		n.fillChild(i)
		// fillChild may have merged; recompute position.
		i, exact = n.findKey(key)
		if exact {
			n.deleteKey(key)
			return
		}
		if n.leaf() {
			return
		}
	}
	n.children[i].deleteKey(key)
}

func (n *btreeNode) maxEntry() btreeEntry {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.entries[len(n.entries)-1]
}

func (n *btreeNode) minEntry() btreeEntry {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.entries[0]
}

// fillChild ensures child i has at least btreeDegree entries by borrowing
// from a sibling or merging.
func (n *btreeNode) fillChild(i int) {
	switch {
	case i > 0 && len(n.children[i-1].entries) >= btreeDegree:
		// Borrow from the left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.entries = append([]btreeEntry{n.entries[i-1]}, child.entries...)
		n.entries[i-1] = left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		if !left.leaf() {
			child.children = append([]*btreeNode{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.entries) && len(n.children[i+1].entries) >= btreeDegree:
		child, right := n.children[i], n.children[i+1]
		child.entries = append(child.entries, n.entries[i])
		n.entries[i] = right.entries[0]
		right.entries = right.entries[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
	case i < len(n.entries):
		n.mergeChildren(i)
	default:
		n.mergeChildren(i - 1)
	}
}

// mergeChildren merges child i, separator i and child i+1.
func (n *btreeNode) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.entries = append(left.entries, n.entries[i])
	left.entries = append(left.entries, right.entries...)
	left.children = append(left.children, right.children...)
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend visits all (key, rids) pairs with lo <= key <= hi in order; nil
// bounds are open. The visitor returns false to stop.
func (t *BTree) Ascend(lo, hi *Value, visit func(key Value, rids []int64) bool) {
	t.root.ascend(lo, hi, visit)
}

func (n *btreeNode) ascend(lo, hi *Value, visit func(Value, []int64) bool) bool {
	start := 0
	if lo != nil {
		// First entry >= lo; entries before it are below the range, but
		// children[start] may still contain in-range keys.
		start, _ = n.findKey(*lo)
	}
	for i := start; i < len(n.entries); i++ {
		if !n.leaf() {
			childLo := lo
			if i > start {
				childLo = nil // already past the lower bound
			}
			if !n.children[i].ascend(childLo, hi, visit) {
				return false
			}
		}
		e := n.entries[i]
		if hi != nil {
			if c, _ := Compare(e.key, *hi); c > 0 {
				return false
			}
		}
		if !visit(e.key, e.rids) {
			return false
		}
	}
	if !n.leaf() {
		childLo := lo
		if len(n.entries) > start {
			childLo = nil
		}
		return n.children[len(n.entries)].ascend(childLo, hi, visit)
	}
	return true
}

// checkInvariants validates B-tree structural invariants (for tests): key
// ordering, node occupancy, and uniform leaf depth. It returns the first
// violation found.
func (t *BTree) checkInvariants() error {
	depth := -1
	var walk func(n *btreeNode, level int, min, max *Value) error
	walk = func(n *btreeNode, level int, min, max *Value) error {
		if n != t.root && len(n.entries) < btreeDegree-1 {
			return fmt.Errorf("node underflow: %d entries", len(n.entries))
		}
		if len(n.entries) > 2*btreeDegree-1 {
			return fmt.Errorf("node overflow: %d entries", len(n.entries))
		}
		for i, e := range n.entries {
			if len(e.rids) == 0 {
				return fmt.Errorf("key %v has no rids", e.key)
			}
			if i > 0 {
				if c, _ := Compare(n.entries[i-1].key, e.key); c >= 0 {
					return fmt.Errorf("keys out of order: %v >= %v", n.entries[i-1].key, e.key)
				}
			}
			if min != nil {
				if c, _ := Compare(e.key, *min); c <= 0 {
					return fmt.Errorf("key %v <= subtree min bound %v", e.key, *min)
				}
			}
			if max != nil {
				if c, _ := Compare(e.key, *max); c >= 0 {
					return fmt.Errorf("key %v >= subtree max bound %v", e.key, *max)
				}
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("leaves at depths %d and %d", depth, level)
			}
			return nil
		}
		if len(n.children) != len(n.entries)+1 {
			return fmt.Errorf("node with %d entries has %d children", len(n.entries), len(n.children))
		}
		for i, child := range n.children {
			cmin, cmax := min, max
			if i > 0 {
				cmin = &n.entries[i-1].key
			}
			if i < len(n.entries) {
				cmax = &n.entries[i].key
			}
			if err := walk(child, level+1, cmin, cmax); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, nil, nil)
}
