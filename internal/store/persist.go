package store

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

// Snapshot format: a line-oriented, typed text dump of all tables, schemas,
// indexes and rows. Values are URL-style %-escaped so embedded separators
// and newlines round-trip. The format is versioned; Load rejects unknown
// versions.
//
//	calsysdb 1
//	table <name> <ncols>
//	col <name> <type>
//	index <column>
//	row <v1> <v2> ...          (one field per column: <type>:<escaped>)
//	end
//
// User-defined functions and event listeners are code, not data, and are
// re-registered by the application after Load.

const snapshotMagic = "calsysdb 1"

// Save writes a snapshot of every table to w. It runs as a reader holding
// the transaction lock, so the snapshot is consistent.
func (db *DB) Save(w io.Writer) error {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, snapshotMagic)
	for _, name := range db.TableNames() {
		t, _ := db.Table(name)
		fmt.Fprintf(bw, "table %s %d\n", escape(t.Name), len(t.Schema.Cols))
		for _, c := range t.Schema.Cols {
			fmt.Fprintf(bw, "col %s %s\n", escape(c.Name), c.Type)
		}
		for _, col := range t.indexColumns() {
			fmt.Fprintf(bw, "index %s\n", escape(col))
		}
		var rowErr error
		t.Scan(func(_ int64, row Row) bool {
			bw.WriteString("row")
			for _, v := range row {
				field, err := encodeValue(v)
				if err != nil {
					rowErr = err
					return false
				}
				bw.WriteByte(' ')
				bw.WriteString(field)
			}
			bw.WriteByte('\n')
			return true
		})
		if rowErr != nil {
			return rowErr
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// snapReader wraps the scanner with a line counter so every corruption
// error names the exact snapshot line and what was expected there —
// operators diagnosing a damaged snapshot should not need a hex dump.
type snapReader struct {
	sc   *bufio.Scanner
	line int
}

func (r *snapReader) scan() bool {
	if r.sc.Scan() {
		r.line++
		return true
	}
	return false
}

func (r *snapReader) text() string { return r.sc.Text() }

// errf positions an error at the current line.
func (r *snapReader) errf(format string, args ...any) error {
	return fmt.Errorf("store: snapshot line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// Load replaces the database's tables with a snapshot previously written by
// Save. The database must be empty of tables. Corruption errors carry the
// snapshot line number and the expectation that failed.
func (db *DB) Load(r io.Reader) error {
	if len(db.TableNames()) != 0 {
		return fmt.Errorf("store: Load requires an empty database")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sr := &snapReader{sc: sc}
	if !sr.scan() || sr.text() != snapshotMagic {
		return fmt.Errorf("store: snapshot line 1: not a calsys snapshot (want magic %q)", snapshotMagic)
	}
	for sr.scan() {
		line := sr.text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "table" || len(fields) != 3 {
			return sr.errf("expected %q, got %q", "table <name> <ncols>", line)
		}
		name, err := unescape(fields[1])
		if err != nil {
			return sr.errf("bad table name: %v", err)
		}
		ncols, err := strconv.Atoi(fields[2])
		if err != nil || ncols <= 0 {
			return sr.errf("bad column count in %q (want positive integer)", line)
		}
		if err := db.loadTable(sr, name, ncols); err != nil {
			return err
		}
	}
	return sc.Err()
}

func (db *DB) loadTable(sr *snapReader, name string, ncols int) error {
	var cols []Column
	var indexCols []string
	var rows []Row
	sawRows := false
	for sr.scan() {
		line := sr.text()
		switch {
		case line == "end":
			schema, err := NewSchema(cols...)
			if err != nil {
				return sr.errf("table %s: %v", name, err)
			}
			if len(schema.Cols) != ncols {
				return sr.errf("table %s declares %d cols, header said %d", name, len(schema.Cols), ncols)
			}
			if err := db.CreateTable(name, schema); err != nil {
				return sr.errf("table %s: %v", name, err)
			}
			if err := db.RunTxn(func(tx *Txn) error {
				for _, row := range rows {
					if _, err := tx.Append(name, row); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return sr.errf("table %s rows: %v", name, err)
			}
			for _, col := range indexCols {
				if err := db.CreateIndex(name, col); err != nil {
					return sr.errf("table %s index: %v", name, err)
				}
			}
			return nil
		case strings.HasPrefix(line, "col "):
			if sawRows {
				return sr.errf("table %s: col line after rows (want cols, then indexes, then rows)", name)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return sr.errf("expected %q, got %q", "col <name> <type>", line)
			}
			cname, err := unescape(fields[1])
			if err != nil {
				return sr.errf("bad column name: %v", err)
			}
			typ, err := ParseType(fields[2])
			if err != nil {
				return sr.errf("column %s: %v", cname, err)
			}
			cols = append(cols, Column{Name: cname, Type: typ})
		case strings.HasPrefix(line, "index "):
			col, err := unescape(strings.TrimPrefix(line, "index "))
			if err != nil {
				return sr.errf("bad index column: %v", err)
			}
			indexCols = append(indexCols, col)
		case strings.HasPrefix(line, "row"):
			sawRows = true
			fields := strings.Fields(line)[1:]
			if len(fields) != ncols {
				return sr.errf("row has %d fields, want %d (table %s)", len(fields), ncols, name)
			}
			row := make(Row, ncols)
			for i, f := range fields {
				v, err := decodeValue(f)
				if err != nil {
					return sr.errf("field %d: %v", i+1, err)
				}
				row[i] = v
			}
			rows = append(rows, row)
		default:
			return sr.errf("unexpected %q in table %s (want col/index/row/end)", line, name)
		}
	}
	return sr.errf("table %s not terminated (missing %q — truncated snapshot?)", name, "end")
}

// encodeValue renders a value as <type>:<escaped payload>.
func encodeValue(v Value) (string, error) {
	switch v.T {
	case TNull:
		return "null:", nil
	case TInt:
		return "int:" + strconv.FormatInt(v.I, 10), nil
	case TFloat:
		return "float:" + strconv.FormatFloat(v.F, 'g', -1, 64), nil
	case TText:
		return "text:" + escape(v.S), nil
	case TBool:
		return "bool:" + strconv.FormatBool(v.B), nil
	case TDate:
		return "date:" + v.D.String(), nil
	case TInterval:
		return fmt.Sprintf("interval:%d,%d", v.Iv.Lo, v.Iv.Hi), nil
	case TCalendar:
		if v.Cal == nil {
			return "calendar:", nil
		}
		return fmt.Sprintf("calendar:%s%s", v.Cal.Granularity(), escape(v.Cal.String())), nil
	}
	return "", fmt.Errorf("store: cannot encode type %v", v.T)
}

func decodeValue(field string) (Value, error) {
	kind, payload, ok := strings.Cut(field, ":")
	if !ok {
		return Null, fmt.Errorf("malformed field %q", field)
	}
	switch kind {
	case "null":
		return Null, nil
	case "int":
		n, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Null, err
		}
		return NewInt(n), nil
	case "float":
		f, err := strconv.ParseFloat(payload, 64)
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case "text":
		s, err := unescape(payload)
		if err != nil {
			return Null, err
		}
		return NewText(s), nil
	case "bool":
		return NewBool(payload == "true"), nil
	case "date":
		d, err := chronology.ParseCivil(payload)
		if err != nil {
			return Null, err
		}
		return NewDate(d), nil
	case "interval":
		lo, hi, ok := strings.Cut(payload, ",")
		if !ok {
			return Null, fmt.Errorf("malformed interval %q", payload)
		}
		l, err1 := strconv.ParseInt(lo, 10, 64)
		h, err2 := strconv.ParseInt(hi, 10, 64)
		if err1 != nil || err2 != nil {
			return Null, fmt.Errorf("malformed interval %q", payload)
		}
		iv, err := interval.New(l, h)
		if err != nil {
			return Null, err
		}
		return NewInterval(iv), nil
	case "calendar":
		if payload == "" {
			return Value{T: TCalendar}, nil
		}
		// The payload is GRANNAME{...} with the braces escaped.
		cut := strings.Index(payload, "%7B") // '{'
		if cut < 0 {
			return Null, fmt.Errorf("malformed calendar %q", payload)
		}
		g, err := chronology.ParseGranularity(payload[:cut])
		if err != nil {
			return Null, err
		}
		body, err := unescape(payload[cut:])
		if err != nil {
			return Null, err
		}
		cal, err := calendar.Parse(g, body)
		if err != nil {
			return Null, err
		}
		return NewCalendar(cal), nil
	}
	return Null, fmt.Errorf("unknown field type %q", kind)
}

// escape percent-encodes spaces, percent signs, braces and control bytes so
// fields stay whitespace-free single tokens.
func escape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '%' || c == '{' || c == '}' || c == 0x7f {
			fmt.Fprintf(&b, "%%%02X", c)
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("store: truncated escape in %q", s)
		}
		n, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("store: bad escape in %q", s)
		}
		b.WriteByte(byte(n))
		i += 2
	}
	return b.String(), nil
}
