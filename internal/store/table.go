package store

import (
	"fmt"
	"strings"
	"sync"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema, rejecting duplicate or empty column names.
func NewSchema(cols ...Column) (Schema, error) {
	seen := map[string]bool{}
	for _, c := range cols {
		name := strings.ToLower(c.Name)
		if name == "" {
			return Schema{}, fmt.Errorf("store: empty column name")
		}
		if seen[name] {
			return Schema{}, fmt.Errorf("store: duplicate column %q", c.Name)
		}
		if c.Type == TNull {
			return Schema{}, fmt.Errorf("store: column %q needs a concrete type", c.Name)
		}
		seen[name] = true
	}
	return Schema{Cols: cols}, nil
}

// ColIndex returns the position of a column (case-insensitive), or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Row is one tuple; its length and types match the table schema.
type Row []Value

// Clone copies a row (values are immutable, so a shallow copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a heap relation: rows indexed by a stable row id, with optional
// B-tree secondary indexes. All mutation goes through a Txn; mu lets readers
// (index probes, scans) run concurrently with the single writing transaction
// — DBCRON probes RULE-TIME while sessions define rules and calendars.
type Table struct {
	Name   string
	Schema Schema

	mu      sync.RWMutex
	rows    []Row // nil entries are deleted (tombstones); row id = slice index
	live    int
	indexes map[string]*BTree // lower-case column name -> index
}

func newTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema, indexes: map[string]*BTree{}}
}

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Get returns the row with the given id.
func (t *Table) Get(rid int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(rid)
}

// getLocked is Get for callers already holding mu.
func (t *Table) getLocked(rid int64) (Row, bool) {
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return nil, false
	}
	return t.rows[rid], true
}

// Scan visits live rows in insertion order; the visitor returns false to
// stop. The visitor runs against a snapshot taken under the read lock, so it
// may itself access the table (event-rule actions do) without deadlocking.
func (t *Table) Scan(visit func(rid int64, row Row) bool) {
	t.mu.RLock()
	snap := make([]Row, len(t.rows))
	copy(snap, t.rows)
	t.mu.RUnlock()
	for rid, row := range snap {
		if row == nil {
			continue
		}
		if !visit(int64(rid), row) {
			return
		}
	}
}

// HasIndex reports whether column col is indexed.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// LookupEq returns the ids of rows whose column equals val, via the column's
// index when present, else a scan.
func (t *Table) LookupEq(col string, val Value) ([]int64, error) {
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %q", t.Name, col)
	}
	t.mu.RLock()
	if idx, ok := t.indexes[strings.ToLower(col)]; ok {
		rids := idx.Lookup(val)
		out := make([]int64, len(rids))
		copy(out, rids)
		t.mu.RUnlock()
		return out, nil
	}
	t.mu.RUnlock()
	var out []int64
	t.Scan(func(rid int64, row Row) bool {
		if Equal(row[ci], val) {
			out = append(out, rid)
		}
		return true
	})
	return out, nil
}

// LookupRange returns ids of rows with lo <= col <= hi (nil bounds open),
// using the index when available.
func (t *Table) LookupRange(col string, lo, hi *Value) ([]int64, error) {
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %q", t.Name, col)
	}
	t.mu.RLock()
	if idx, ok := t.indexes[strings.ToLower(col)]; ok {
		var out []int64
		idx.Ascend(lo, hi, func(_ Value, rids []int64) bool {
			out = append(out, rids...)
			return true
		})
		t.mu.RUnlock()
		return out, nil
	}
	t.mu.RUnlock()
	var out []int64
	var scanErr error
	t.Scan(func(rid int64, row Row) bool {
		v := row[ci]
		if lo != nil {
			c, err := Compare(v, *lo)
			if err != nil {
				scanErr = err
				return false
			}
			if c < 0 {
				return true
			}
		}
		if hi != nil {
			c, err := Compare(v, *hi)
			if err != nil {
				scanErr = err
				return false
			}
			if c > 0 {
				return true
			}
		}
		out = append(out, rid)
		return true
	})
	return out, scanErr
}

// validateRow coerces a row to the table schema.
func (t *Table) validateRow(row Row) (Row, error) {
	if len(row) != len(t.Schema.Cols) {
		return nil, fmt.Errorf("store: table %s expects %d values, got %d", t.Name, len(t.Schema.Cols), len(row))
	}
	out := make(Row, len(row))
	for i, v := range row {
		cv, err := v.CoerceTo(t.Schema.Cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("store: column %s: %w", t.Schema.Cols[i].Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

func (t *Table) indexInsert(rid int64, row Row) error {
	for col, idx := range t.indexes {
		ci := t.Schema.ColIndex(col)
		if err := idx.Insert(row[ci], rid); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) indexDelete(rid int64, row Row) {
	for col, idx := range t.indexes {
		ci := t.Schema.ColIndex(col)
		idx.Delete(row[ci], rid)
	}
}

// insertRaw appends a validated row (txn internal).
func (t *Table) insertRaw(row Row) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := int64(len(t.rows))
	if err := t.indexInsert(rid, row); err != nil {
		return 0, err
	}
	t.rows = append(t.rows, row)
	t.live++
	return rid, nil
}

// deleteRaw tombstones a row (txn internal).
func (t *Table) deleteRaw(rid int64) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.getLocked(rid)
	if !ok {
		return nil, fmt.Errorf("store: table %s has no row %d", t.Name, rid)
	}
	t.indexDelete(rid, row)
	t.rows[rid] = nil
	t.live--
	return row, nil
}

// restoreRaw resurrects a row at its old id (rollback internal).
func (t *Table) restoreRaw(rid int64, row Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for int64(len(t.rows)) <= rid {
		t.rows = append(t.rows, nil)
	}
	if t.rows[rid] == nil {
		t.live++
	}
	t.rows[rid] = row
	_ = t.indexInsert(rid, row)
}

// updateRaw replaces a row in place (txn internal).
func (t *Table) updateRaw(rid int64, row Row) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.getLocked(rid)
	if !ok {
		return nil, fmt.Errorf("store: table %s has no row %d", t.Name, rid)
	}
	t.indexDelete(rid, old)
	if err := t.indexInsert(rid, row); err != nil {
		_ = t.indexInsert(rid, old)
		return nil, err
	}
	t.rows[rid] = row
	return old, nil
}

// indexColumns lists the indexed columns (for snapshots).
func (t *Table) indexColumns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.indexes))
	for col := range t.indexes {
		out = append(out, col)
	}
	return out
}

// addIndex installs a built index under col, populating it from the current
// rows (DDL internal; the transaction lock serializes it against writers,
// mu against concurrent readers).
func (t *Table) addIndex(col string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(col)
	if _, ok := t.indexes[key]; ok {
		return fmt.Errorf("store: index on %s.%s already exists", t.Name, col)
	}
	ci := t.Schema.ColIndex(col)
	idx := NewBTree()
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if err := idx.Insert(row[ci], int64(rid)); err != nil {
			return err
		}
	}
	t.indexes[key] = idx
	return nil
}
