package store

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/interval"
)

func TestValueBasics(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewFloat(2.5), "2.5"},
		{NewText("hi"), "hi"},
		{NewBool(true), "true"},
		{NewDate(chronology.Civil{Year: 1993, Month: 1, Day: 1}), "1993-01-01"},
		{NewInterval(interval.Must(1, 31)), "(1,31)"},
		{Null, "null"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.v.T, got, tc.want)
		}
	}
	cal := calendar.MustFromIntervals(chronology.Day, interval.Must(1, 7))
	if got := NewCalendar(cal).String(); got != "{(1,7)}" {
		t.Errorf("calendar value = %q", got)
	}
	if !Null.IsNull() || NewInt(1).IsNull() {
		t.Error("IsNull wrong")
	}
}

func TestValueCompare(t *testing.T) {
	lt := [][2]Value{
		{NewInt(1), NewInt(2)},
		{NewInt(1), NewFloat(1.5)},
		{NewFloat(0.5), NewInt(1)},
		{NewText("a"), NewText("b")},
		{NewBool(false), NewBool(true)},
		{NewDate(chronology.Civil{Year: 1992, Month: 12, Day: 31}), NewDate(chronology.Civil{Year: 1993, Month: 1, Day: 1})},
		{NewInterval(interval.Must(1, 5)), NewInterval(interval.Must(1, 6))},
		{Null, NewInt(-100)},
	}
	for _, pair := range lt {
		c, err := Compare(pair[0], pair[1])
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d,%v, want -1", pair[0], pair[1], c, err)
		}
		c, err = Compare(pair[1], pair[0])
		if err != nil || c != 1 {
			t.Errorf("Compare(%v,%v) = %d,%v, want 1", pair[1], pair[0], c, err)
		}
	}
	if c, err := Compare(NewInt(3), NewInt(3)); err != nil || c != 0 {
		t.Error("equal ints")
	}
	if _, err := Compare(NewInt(1), NewText("1")); err == nil {
		t.Error("cross-type comparison should fail")
	}
	if _, err := Compare(NewCalendar(nil), NewCalendar(nil)); err == nil {
		t.Error("calendars are not ordered")
	}
}

func TestValueEqualAndCoerce(t *testing.T) {
	c1 := calendar.MustFromIntervals(chronology.Day, interval.Must(1, 7))
	c2 := calendar.MustFromIntervals(chronology.Day, interval.Must(1, 7))
	if !Equal(NewCalendar(c1), NewCalendar(c2)) {
		t.Error("structurally equal calendars")
	}
	if Equal(NewCalendar(c1), NewInt(1)) {
		t.Error("calendar != int")
	}
	v, err := NewInt(3).CoerceTo(TFloat)
	if err != nil || v.F != 3 {
		t.Error("int->float coercion")
	}
	v, err = NewText("Jan 1, 1993").CoerceTo(TDate)
	if err != nil || v.D != (chronology.Civil{Year: 1993, Month: 1, Day: 1}) {
		t.Error("text->date coercion")
	}
	if _, err := NewText("not a date").CoerceTo(TDate); err == nil {
		t.Error("bad date coercion should fail")
	}
	if _, err := NewBool(true).CoerceTo(TInt); err == nil {
		t.Error("bool->int should fail")
	}
	if _, err := ParseType("float"); err != nil {
		t.Error("ParseType(float)")
	}
	if _, err := ParseType("null"); err == nil {
		t.Error("null is not a declarable type")
	}
}

func mustSchema(t *testing.T, cols ...Column) Schema {
	t.Helper()
	s, err := NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func stocksDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	schema := mustSchema(t,
		Column{"symbol", TText}, Column{"day", TDate}, Column{"price", TFloat})
	if err := db.CreateTable("stocks", schema); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{"a", TInt}, Column{"A", TText}); err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
	if _, err := NewSchema(Column{"", TInt}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema(Column{"a", TNull}); err == nil {
		t.Error("null-typed column should fail")
	}
	s := mustSchema(t, Column{"sym", TText}, Column{"px", TFloat})
	if s.ColIndex("PX") != 1 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
}

func TestCRUDAndScan(t *testing.T) {
	db := stocksDB(t)
	var rid int64
	err := db.RunTxn(func(tx *Txn) error {
		var err error
		rid, err = tx.Append("stocks", Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(50.25)})
		if err != nil {
			return err
		}
		_, err = tx.Append("stocks", Row{NewText("DEC"), NewText("1993-01-04"), NewFloat(33.5)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("stocks")
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	row, ok := tab.Get(rid)
	if !ok || row[0].S != "IBM" || row[1].T != TDate {
		t.Errorf("Get = %v (text date must coerce to TDate)", row)
	}
	// Replace and delete.
	err = db.RunTxn(func(tx *Txn) error {
		if err := tx.Replace("stocks", rid, Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(51)}); err != nil {
			return err
		}
		return tx.Delete("stocks", rid+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Errorf("Len after delete = %d", tab.Len())
	}
	row, _ = tab.Get(rid)
	if row[2].F != 51 {
		t.Errorf("price after replace = %v", row[2])
	}
	if _, ok := tab.Get(rid + 1); ok {
		t.Error("deleted row still visible")
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	db := stocksDB(t)
	if err := db.CreateIndex("stocks", "symbol"); err != nil {
		t.Fatal(err)
	}
	var keepRid int64
	if err := db.RunTxn(func(tx *Txn) error {
		var err error
		keepRid, err = tx.Append("stocks", Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(50)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.Append("stocks", Row{NewText("DEC"), NewText("1993-01-05"), NewFloat(33)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Replace("stocks", keepRid, Row{NewText("IBM"), NewText("1993-01-05"), NewFloat(99)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("stocks", keepRid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	tab, _ := db.Table("stocks")
	if tab.Len() != 1 {
		t.Fatalf("Len after rollback = %d", tab.Len())
	}
	row, ok := tab.Get(keepRid)
	if !ok || row[2].F != 50 || row[1].D.Day != 4 {
		t.Errorf("row after rollback = %v", row)
	}
	// Index must agree with the heap after rollback.
	rids, err := tab.LookupEq("symbol", NewText("IBM"))
	if err != nil || len(rids) != 1 || rids[0] != keepRid {
		t.Errorf("index after rollback = %v, %v", rids, err)
	}
	if rids, _ := tab.LookupEq("symbol", NewText("DEC")); len(rids) != 0 {
		t.Errorf("phantom DEC in index: %v", rids)
	}
}

func TestTxnLifecycleErrors(t *testing.T) {
	db := stocksDB(t)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}
	if err := tx.Rollback(); err == nil {
		t.Error("rollback after commit should fail")
	}
	if _, err := tx.Append("stocks", Row{NewText("X"), NewText("1993-01-01"), NewFloat(1)}); err == nil {
		t.Error("append on finished txn should fail")
	}
	if err := db.RunTxn(func(tx *Txn) error {
		_, err := tx.Append("nope", Row{})
		return err
	}); err == nil {
		t.Error("append to missing table should fail")
	}
	if err := db.RunTxn(func(tx *Txn) error {
		_, err := tx.Append("stocks", Row{NewText("X")})
		return err
	}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := db.RunTxn(func(tx *Txn) error {
		return tx.Delete("stocks", 12345)
	}); err == nil {
		t.Error("deleting a missing row should fail")
	}
}

func TestIndexedLookups(t *testing.T) {
	db := stocksDB(t)
	if err := db.CreateIndex("stocks", "price"); err != nil {
		t.Fatal(err)
	}
	if err := db.RunTxn(func(tx *Txn) error {
		for i := 0; i < 50; i++ {
			if _, err := tx.Append("stocks", Row{NewText("S"), NewText("1993-01-04"), NewFloat(float64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("stocks")
	if !tab.HasIndex("price") || tab.HasIndex("symbol") {
		t.Error("HasIndex wrong")
	}
	rids, err := tab.LookupEq("price", NewFloat(7))
	if err != nil || len(rids) != 1 {
		t.Errorf("LookupEq = %v, %v", rids, err)
	}
	lo, hi := NewFloat(10), NewFloat(19)
	rids, err = tab.LookupRange("price", &lo, &hi)
	if err != nil || len(rids) != 10 {
		t.Errorf("LookupRange = %d rids, %v", len(rids), err)
	}
	// Unindexed column falls back to a scan with identical semantics.
	rids2, err := tab.LookupRange("day", nil, nil)
	if err != nil || len(rids2) != 50 {
		t.Errorf("unindexed LookupRange = %d, %v", len(rids2), err)
	}
	if _, err := tab.LookupEq("nope", NewInt(1)); err == nil {
		t.Error("lookup on missing column should fail")
	}
}

func TestDDLValidation(t *testing.T) {
	db := stocksDB(t)
	if err := db.CreateTable("stocks", Schema{}); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := db.CreateTable("", Schema{}); err == nil {
		t.Error("empty table name should fail")
	}
	if err := db.CreateIndex("stocks", "nope"); err == nil {
		t.Error("index on missing column should fail")
	}
	if err := db.CreateIndex("nope", "x"); err == nil {
		t.Error("index on missing table should fail")
	}
	if err := db.CreateIndex("stocks", "symbol"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("stocks", "symbol"); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := db.DropTable("stocks"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("stocks"); err == nil {
		t.Error("double drop should fail")
	}
	names := db.TableNames()
	if len(names) != 0 {
		t.Errorf("TableNames = %v", names)
	}
	// Calendar columns exist but are not indexable.
	sch := mustSchema(t, Column{"name", TText}, Column{"vals", TCalendar})
	if err := db.CreateTable("cals", sch); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("cals", "vals"); err == nil {
		t.Error("calendar index should fail")
	}
}

func TestUserFunctions(t *testing.T) {
	db := NewDB()
	err := db.RegisterFunc(UserFunc{
		Name: "double", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []Value) (Value, error) { return NewInt(args[0].I * 2), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.CallFunc("DOUBLE", []Value{NewInt(21)})
	if err != nil || v.I != 42 {
		t.Errorf("CallFunc = %v, %v", v, err)
	}
	if _, err := db.CallFunc("double", nil); err == nil {
		t.Error("arity check should fail")
	}
	if _, err := db.CallFunc("nope", nil); err == nil {
		t.Error("unknown function should fail")
	}
	if err := db.RegisterFunc(UserFunc{}); err == nil {
		t.Error("anonymous function should fail")
	}
}

func TestEventListeners(t *testing.T) {
	db := stocksDB(t)
	var events []string
	db.AddListener(func(tx *Txn, ev Event) error {
		events = append(events, ev.Op.String()+":"+ev.Table)
		return nil
	})
	err := db.RunTxn(func(tx *Txn) error {
		rid, err := tx.Append("stocks", Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(50)})
		if err != nil {
			return err
		}
		if err := tx.Replace("stocks", rid, Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(51)}); err != nil {
			return err
		}
		if err := tx.Retrieve("stocks", nil, func(int64, Row) bool { return true }); err != nil {
			return err
		}
		return tx.Delete("stocks", rid)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"append:stocks", "replace:stocks", "retrieve:stocks", "delete:stocks"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Errorf("events = %v, want %v", events, want)
	}
}

// A listener whose action mutates the database participates in the same
// transaction — rollback undoes rule effects too.
func TestListenerActionsJoinTransaction(t *testing.T) {
	db := stocksDB(t)
	audit := mustSchema(t, Column{"msg", TText})
	if err := db.CreateTable("audit", audit); err != nil {
		t.Fatal(err)
	}
	db.AddListener(func(tx *Txn, ev Event) error {
		if ev.Op == EvAppend && ev.Table == "stocks" {
			_, err := tx.Append("audit", Row{NewText("stock added")})
			return err
		}
		return nil
	})
	tx := db.Begin()
	if _, err := tx.Append("stocks", Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(50)}); err != nil {
		t.Fatal(err)
	}
	auditTab, _ := db.Table("audit")
	if auditTab.Len() != 1 {
		t.Fatalf("audit rows inside txn = %d", auditTab.Len())
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if auditTab.Len() != 0 {
		t.Errorf("audit rows after rollback = %d (rule effects must roll back)", auditTab.Len())
	}
}

// Rule recursion is bounded: a listener that re-appends to the same table
// must trip the depth guard instead of looping forever.
func TestListenerRecursionBounded(t *testing.T) {
	db := stocksDB(t)
	db.AddListener(func(tx *Txn, ev Event) error {
		if ev.Op == EvAppend && ev.Table == "stocks" {
			_, err := tx.Append("stocks", ev.New)
			return err
		}
		return nil
	})
	err := db.RunTxn(func(tx *Txn) error {
		_, err := tx.Append("stocks", Row{NewText("IBM"), NewText("1993-01-04"), NewFloat(50)})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("expected recursion error, got %v", err)
	}
	tab, _ := db.Table("stocks")
	if tab.Len() != 0 {
		t.Errorf("rows after aborted recursive txn = %d", tab.Len())
	}
}

func TestRetrieveWithFilterAndEvents(t *testing.T) {
	db := stocksDB(t)
	if err := db.RunTxn(func(tx *Txn) error {
		for i := 0; i < 10; i++ {
			if _, err := tx.Append("stocks", Row{NewText("S"), NewText("1993-01-04"), NewFloat(float64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	retrieves := 0
	db.AddListener(func(tx *Txn, ev Event) error {
		if ev.Op == EvRetrieve {
			retrieves++
		}
		return nil
	})
	var seen int
	if err := db.RunTxn(func(tx *Txn) error {
		return tx.Retrieve("stocks", func(r Row) bool { return r[2].F >= 5 }, func(int64, Row) bool {
			seen++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 || retrieves != 5 {
		t.Errorf("seen=%d retrieve events=%d, want 5 and 5", seen, retrieves)
	}
}
