package store

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 1000; i++ {
		if err := bt.Insert(NewInt(i%100), i); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Len() != 1000 {
		t.Errorf("Len = %d", bt.Len())
	}
	rids := bt.Lookup(NewInt(42))
	if len(rids) != 10 {
		t.Errorf("Lookup(42) = %d rids, want 10", len(rids))
	}
	if got := bt.Lookup(NewInt(1234)); got != nil {
		t.Errorf("Lookup(missing) = %v", got)
	}
	if err := bt.checkInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	const n = 500
	for i := int64(0); i < n; i++ {
		if err := bt.Insert(NewInt(i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Delete odd keys.
	for i := int64(1); i < n; i += 2 {
		if !bt.Delete(NewInt(i), i) {
			t.Fatalf("Delete(%d) reported missing", i)
		}
	}
	if bt.Len() != n/2 {
		t.Errorf("Len = %d, want %d", bt.Len(), n/2)
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	for i := int64(0); i < n; i++ {
		got := bt.Lookup(NewInt(i))
		wantPresent := i%2 == 0
		if (got != nil) != wantPresent {
			t.Errorf("Lookup(%d) present=%v, want %v", i, got != nil, wantPresent)
		}
	}
	if bt.Delete(NewInt(10_000), 1) {
		t.Error("deleting a missing key should report false")
	}
	if bt.Delete(NewInt(0), 999) {
		t.Error("deleting a missing rid should report false")
	}
}

func TestBTreeDuplicateRids(t *testing.T) {
	bt := NewBTree()
	for rid := int64(0); rid < 5; rid++ {
		if err := bt.Insert(NewText("k"), rid); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(bt.Lookup(NewText("k"))); got != 5 {
		t.Fatalf("dup rids = %d", got)
	}
	bt.Delete(NewText("k"), 2)
	rids := bt.Lookup(NewText("k"))
	if len(rids) != 4 {
		t.Fatalf("after delete: %v", rids)
	}
	for _, r := range rids {
		if r == 2 {
			t.Error("rid 2 still present")
		}
	}
}

func TestBTreeAscend(t *testing.T) {
	bt := NewBTree()
	perm := rand.New(rand.NewSource(7)).Perm(300)
	for _, k := range perm {
		if err := bt.Insert(NewInt(int64(k)), int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	bt.Ascend(nil, nil, func(k Value, rids []int64) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 300 {
		t.Fatalf("full scan = %d keys", len(got))
	}
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("scan out of order at %d: %d", i, got[i])
		}
	}
	// Bounded range.
	lo, hi := NewInt(50), NewInt(59)
	got = nil
	bt.Ascend(&lo, &hi, func(k Value, rids []int64) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 10 || got[0] != 50 || got[9] != 59 {
		t.Errorf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	bt.Ascend(nil, nil, func(Value, []int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBTreeRejectsCalendarKeys(t *testing.T) {
	bt := NewBTree()
	if err := bt.Insert(Value{T: TCalendar}, 1); err == nil {
		t.Error("calendar keys must be rejected")
	}
}

// Property: after any interleaving of inserts and deletes, the tree holds
// exactly the surviving pairs, iterates in order, and keeps its structural
// invariants.
func TestBTreeRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		ref := map[int64]map[int64]bool{} // key -> set of rids
		for op := 0; op < 400; op++ {
			k := int64(rng.Intn(60))
			rid := int64(rng.Intn(8))
			if rng.Intn(3) > 0 {
				if ref[k] == nil {
					ref[k] = map[int64]bool{}
				}
				if !ref[k][rid] {
					if err := bt.Insert(NewInt(k), rid); err != nil {
						return false
					}
					ref[k][rid] = true
				}
			} else {
				want := ref[k] != nil && ref[k][rid]
				got := bt.Delete(NewInt(k), rid)
				if got != want {
					return false
				}
				if want {
					delete(ref[k], rid)
					if len(ref[k]) == 0 {
						delete(ref, k)
					}
				}
			}
		}
		if err := bt.checkInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		total := 0
		for k, rids := range ref {
			got := bt.Lookup(NewInt(k))
			if len(got) != len(rids) {
				return false
			}
			for _, r := range got {
				if !rids[r] {
					return false
				}
			}
			total += len(rids)
		}
		if bt.Len() != total {
			return false
		}
		// Ordered iteration covers exactly the reference keys.
		prev := int64(-1)
		seen := 0
		okOrder := true
		bt.Ascend(nil, nil, func(k Value, rids []int64) bool {
			if k.I <= prev {
				okOrder = false
				return false
			}
			prev = k.I
			seen++
			return true
		})
		return okOrder && seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBTreeLargeSequential(t *testing.T) {
	bt := NewBTree()
	const n = 20000
	for i := int64(0); i < n; i++ {
		if err := bt.Insert(NewInt(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Delete everything in reverse.
	for i := int64(n - 1); i >= 0; i-- {
		if !bt.Delete(NewInt(i), i) {
			t.Fatalf("Delete(%d) missing", i)
		}
	}
	if bt.Len() != 0 {
		t.Errorf("Len after drain = %d", bt.Len())
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
}
