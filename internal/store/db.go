package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// UserFunc is a user-defined function registered with the database — the
// extensibility hook the paper relies on ("support for the declaration of
// operators that take complex data types as arguments"). The calendar system
// registers its expression evaluator and date functions this way.
type UserFunc struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 for variadic
	Fn      func(args []Value) (Value, error)
}

// EventOp identifies a database operation for the rule system.
type EventOp int

// Database operations, matching the Postgres rule system's event kinds.
const (
	EvAppend EventOp = iota
	EvDelete
	EvReplace
	EvRetrieve
)

var eventNames = [...]string{EvAppend: "append", EvDelete: "delete", EvReplace: "replace", EvRetrieve: "retrieve"}

// String names the event operation.
func (e EventOp) String() string {
	if e < 0 || int(e) >= len(eventNames) {
		return fmt.Sprintf("EventOp(%d)", int(e))
	}
	return eventNames[e]
}

// ParseEventOp resolves an event name.
func ParseEventOp(s string) (EventOp, error) {
	for i, n := range eventNames {
		if strings.EqualFold(s, n) {
			return EventOp(i), nil
		}
	}
	return 0, fmt.Errorf("store: unknown event %q", s)
}

// Event describes a database operation delivered to event listeners (the
// rule system).
type Event struct {
	Op    EventOp
	Table string
	RID   int64
	New   Row // appended or replacement row (nil otherwise)
	Old   Row // deleted or replaced row; retrieved row for EvRetrieve
}

// EventListener observes operations within the transaction that performed
// them. Returning an error aborts the operation.
type EventListener func(tx *Txn, ev Event) error

// DB is the database: named tables, user-defined functions, and event
// listeners. A single coarse lock serializes transactions (the paper's
// workload is catalog-sized).
type DB struct {
	// catMu guards the catalog maps (short critical sections, safe to take
	// inside a transaction).
	catMu sync.RWMutex
	// txnMu serializes transactions and DDL; it is held for a transaction's
	// whole lifetime, making transactions trivially serializable.
	txnMu     sync.Mutex
	tables    map[string]*Table
	funcs     map[string]UserFunc
	listeners []EventListener
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, funcs: map[string]UserFunc{}}
}

// RegisterFunc declares a user-defined function. Re-registering a name
// replaces it.
func (db *DB) RegisterFunc(f UserFunc) error {
	if f.Name == "" || f.Fn == nil {
		return fmt.Errorf("store: user function needs a name and a body")
	}
	db.catMu.Lock()
	defer db.catMu.Unlock()
	db.funcs[strings.ToLower(f.Name)] = f
	return nil
}

// Func resolves a user-defined function.
func (db *DB) Func(name string) (UserFunc, bool) {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	f, ok := db.funcs[strings.ToLower(name)]
	return f, ok
}

// CallFunc invokes a user-defined function with arity checking.
func (db *DB) CallFunc(name string, args []Value) (Value, error) {
	f, ok := db.Func(name)
	if !ok {
		return Null, fmt.Errorf("store: unknown function %q", name)
	}
	if len(args) < f.MinArgs || (f.MaxArgs >= 0 && len(args) > f.MaxArgs) {
		return Null, fmt.Errorf("store: function %q called with %d args", name, len(args))
	}
	return f.Fn(args)
}

// AddListener registers an event listener (used by the rule system).
func (db *DB) AddListener(l EventListener) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	db.listeners = append(db.listeners, l)
}

// CreateTable adds a new, empty table.
func (db *DB) CreateTable(name string, schema Schema) error {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	db.catMu.Lock()
	defer db.catMu.Unlock()
	key := strings.ToLower(name)
	if key == "" {
		return fmt.Errorf("store: empty table name")
	}
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("store: table %q already exists", name)
	}
	db.tables[key] = newTable(name, schema)
	return nil
}

// DropTable removes a table and its data.
func (db *DB) DropTable(name string) error {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	db.catMu.Lock()
	defer db.catMu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("store: no table %q", name)
	}
	delete(db.tables, key)
	return nil
}

// Table resolves a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex builds a B-tree index on a column of an existing table.
func (db *DB) CreateIndex(table, col string) error {
	db.txnMu.Lock()
	defer db.txnMu.Unlock()
	db.catMu.RLock()
	t, ok := db.tables[strings.ToLower(table)]
	db.catMu.RUnlock()
	if !ok {
		return fmt.Errorf("store: no table %q", table)
	}
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("store: table %s has no column %q", table, col)
	}
	if t.Schema.Cols[ci].Type == TCalendar {
		return fmt.Errorf("store: calendar columns are not indexable")
	}
	return t.addIndex(col)
}
