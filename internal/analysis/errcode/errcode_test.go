package errcode_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calsys/internal/analysis"
	"calsys/internal/analysis/errcode"
)

const badSrc = `package bad

import "net/http"

const (
	ErrNotFound = "not_found"
	ErrInternal = "internal"
)

type ErrorBody struct {
	Code, Message string
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {}

func h(w http.ResponseWriter) {
	writeError(w, 404, ErrorBody{Code: "not_found", Message: "x"}) // want hardcoded string flagged
	writeError(w, 500, ErrorBody{"oops", "y"})                     // want positional literal flagged
	writeError(w, 500, ErrorBody{Code: ErrNoSuchCode})             // want unregistered const flagged
	var b ErrorBody
	b.Code = "conflict" // want assignment flagged
	http.Error(w, "boom", 500) // want plain-text bypass flagged
}

var ErrNoSuchCode = "zombie"
`

const goodSrc = `package good

import "net/http"

const (
	ErrNotFound = "not_found"
	ErrConflict = "conflict"
)

type ErrorBody struct {
	Code, Message string
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {}

func h(w http.ResponseWriter, werr error) {
	writeError(w, 404, ErrorBody{Code: ErrNotFound, Message: "x"})
	status, code := 404, ErrNotFound
	if werr != nil {
		status, code = 409, ErrConflict
	}
	writeError(w, status, ErrorBody{Code: code, Message: "y"}) // variable: fine
}
`

// A package with no Err* registry is out of scope even if it calls
// http.Error — the convention only binds where codes are declared.
const unscopedSrc = `package other

import "net/http"

func h(w http.ResponseWriter) {
	http.Error(w, "plain is fine here", 500)
}
`

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestErrcodeFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "bad.go", badSrc)
	diags, err := analysis.Run([]string{dir}, []*analysis.Analyzer{errcode.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 5 {
		t.Fatalf("want 5 findings, got %d:\n%v", len(diags), diags)
	}
	wants := []string{
		`code "not_found" is a hardcoded string`,
		`code "oops" is a hardcoded string`,
		"ErrNoSuchCode is not in the package's registered Err* constants",
		`code "conflict" is a hardcoded string`,
		"http.Error writes a plain-text body",
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag[%d] = %s, want %q", i, diags[i], want)
		}
	}
	for _, d := range diags {
		if d.Pos.Line == 0 || d.Analyzer != "errcode" {
			t.Errorf("diagnostic missing position or analyzer: %+v", d)
		}
	}
}

func TestErrcodeCleanCode(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "good.go", goodSrc)
	diags, err := analysis.Run([]string{dir}, []*analysis.Analyzer{errcode.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("clean code flagged:\n%v", diags)
	}
}

func TestErrcodeSkipsPackagesWithoutRegistry(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "other.go", unscopedSrc)
	diags, err := analysis.Run([]string{dir}, []*analysis.Analyzer{errcode.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("registry-free package should be out of scope:\n%v", diags)
	}
}

// The service package this pass exists for must satisfy it — CI enforces
// this via cmd/vet-calsys.
func TestServePackageIsClean(t *testing.T) {
	diags, err := analysis.Run([]string{"../../serve"}, []*analysis.Analyzer{errcode.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/serve has errcode findings:\n%v", diags)
	}
}
