// Package errcode is a vet pass enforcing the HTTP service's structured
// error-envelope convention: every error a handler writes must carry a code
// from the package's registered set (the top-level `Err*` string constants),
// so clients and CI pipelines can filter on stable codes.
//
// The pass activates only in packages that declare such a registry. There it
// flags:
//
//   - ErrorBody literals whose Code field is a hardcoded string — even one
//     matching a registered value must spell the constant, or renames and
//     typos silently fork the wire protocol;
//   - ErrorBody Code fields naming an Err*-style constant that is not in the
//     registry (a typo'd or deleted code);
//   - assignments of string literals to a .Code field;
//   - http.Error calls, which emit plain text and bypass the envelope
//     entirely.
//
// Code fields holding variables or function results are accepted: tracing
// them needs dataflow, and the registry consts are the only Err* sources in
// practice.
package errcode

import (
	"go/ast"
	"go/token"
	"strings"

	"calsys/internal/analysis"
)

// Analyzer is the errcode pass.
var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "flag HTTP error responses whose code is not a registered Err* " +
		"constant, and plain-text http.Error calls bypassing the envelope",
	Run: run,
}

func run(pass *analysis.Pass) error {
	registry := collectRegistry(pass.Files)
	if len(registry) == 0 {
		return nil // package has no error-code registry; convention not in force
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				checkErrorBody(pass, registry, node)
			case *ast.AssignStmt:
				checkCodeAssign(pass, node)
			case *ast.CallExpr:
				checkHTTPError(pass, node)
			}
			return true
		})
	}
	return nil
}

// collectRegistry gathers the package's top-level `Err*` string constants —
// the registered error codes.
func collectRegistry(files []*ast.File) map[string]bool {
	registry := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Err") || i >= len(vs.Values) {
						continue
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
						registry[name.Name] = true
					}
				}
			}
		}
	}
	return registry
}

// checkErrorBody vets the Code field of an ErrorBody{...} literal, keyed or
// positional (Code is the first field).
func checkErrorBody(pass *analysis.Pass, registry map[string]bool, lit *ast.CompositeLit) {
	if typeName(lit.Type) != "ErrorBody" || len(lit.Elts) == 0 {
		return
	}
	var code ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			code = lit.Elts[0] // positional literal: field 0 is Code
			break
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
			code = kv.Value
			break
		}
	}
	if code == nil {
		return
	}
	switch v := ast.Unparen(code).(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			pass.Report(v.Pos(),
				"error code %s is a hardcoded string; use a registered Err* constant", v.Value)
		}
	case *ast.Ident:
		if strings.HasPrefix(v.Name, "Err") && !registry[v.Name] {
			pass.Report(v.Pos(),
				"error code %s is not in the package's registered Err* constants", v.Name)
		}
	}
}

// checkCodeAssign flags `body.Code = "literal"` — the same hardcoded-string
// hole as in the composite literal, spelled as an assignment.
func checkCodeAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Code" || i >= len(as.Rhs) {
			continue
		}
		if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			pass.Report(lit.Pos(),
				"error code %s is a hardcoded string; use a registered Err* constant", lit.Value)
		}
	}
}

// checkHTTPError flags http.Error calls: they write text/plain bodies that
// carry no code, so clients cannot filter them.
func checkHTTPError(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return
	}
	if x, ok := sel.X.(*ast.Ident); ok && x.Name == "http" {
		pass.Report(call.Pos(),
			"http.Error writes a plain-text body; use the structured error envelope (writeError) instead")
	}
}

// typeName returns the bare name of a (possibly qualified or pointered) type
// expression: serve.ErrorBody → "ErrorBody".
func typeName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.SelectorExpr:
		return tt.Sel.Name
	case *ast.StarExpr:
		return typeName(tt.X)
	}
	return ""
}
