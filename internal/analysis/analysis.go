// Package analysis is a minimal, dependency-free analogue of the
// golang.org/x/tools/go/analysis framework: just enough driver to run
// AST-level vet passes over this repository from `make check` and CI
// without fetching external modules (the build environment is offline).
//
// Analyzers receive parsed files for one package directory at a time and
// report positioned diagnostics; the driver handles `./...` pattern
// expansion, test-file filtering, and aggregation. Passes needing full type
// information belong in the real framework; the checks hosted here are
// deliberately syntactic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders "path:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named vet pass.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package directory and reports findings via
	// pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package directory.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Dir      string
	Files    []*ast.File

	report func(Diagnostic)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one parsed package directory.
type Package struct {
	Dir   string
	Files []*ast.File
}

// Options tune a driver run.
type Options struct {
	// IncludeTests parses _test.go files too. Off by default: tests
	// legitimately construct invalid values to assert rejection.
	IncludeTests bool
}

// Load parses the package directories matched by patterns. A pattern is a
// directory path, or a path ending in "/..." which matches the directory
// and everything below it (vendor, testdata and dot-directories are
// skipped, mirroring go tooling).
func Load(patterns []string, opts Options) ([]*Package, *token.FileSet, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			dir = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			dir = "."
		}
		if dir == "" {
			dir = "."
		}
		if !recursive {
			dirSet[filepath.Clean(dir)] = true
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata" || name == "node_modules") {
				return filepath.SkipDir
			}
			dirSet[filepath.Clean(path)] = true
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			if !opts.IncludeTests && strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		if len(files) > 0 {
			pkgs = append(pkgs, &Package{Dir: dir, Files: files})
		}
	}
	return pkgs, fset, nil
}

// Run loads the packages matched by patterns and applies every analyzer,
// returning all diagnostics sorted by position.
func Run(patterns []string, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	pkgs, fset, err := Load(patterns, opts)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Dir:      pkg.Dir,
				Files:    pkg.Files,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags, nil
}
