// Package tickzero is a vet pass enforcing the paper's no-zero tick
// convention in Go code: tick 0 never exists (the tick before 1 is -1), so
// an interval endpoint or tick-list element written as literal 0 is a bug
// that the runtime will reject — better caught at vet time. It also flags
// comparisons between ticks obtained at different granularities, which are
// meaningless without an explicit conversion.
package tickzero

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"calsys/internal/analysis"
)

// Analyzer is the tickzero pass.
var Analyzer = &analysis.Analyzer{
	Name: "tickzero",
	Doc: "flag interval/tick constructions containing literal tick 0, and " +
		"tick comparisons across granularities without conversion",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				checkComposite(pass, node)
			case *ast.CallExpr:
				checkCall(pass, node)
			case *ast.BinaryExpr:
				checkComparison(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkComposite flags interval.Interval{...} literals with an explicit 0
// endpoint and []chronology.Tick{...} literals containing 0. The empty
// Interval{} zero value is a legitimate sentinel and is not flagged.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	switch typeName(lit.Type) {
	case "Interval":
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && (key.Name == "Lo" || key.Name == "Hi") && isZero(kv.Value) {
					pass.Report(kv.Value.Pos(),
						"interval endpoint %s is literal tick 0, which the no-zero convention excludes (the tick before 1 is -1)", key.Name)
				}
				continue
			}
			if i < 2 && isZero(el) {
				pass.Report(el.Pos(),
					"interval endpoint is literal tick 0, which the no-zero convention excludes (the tick before 1 is -1)")
			}
		}
	case "Tick":
		// []chronology.Tick{...} (or []Tick{...} inside the package).
		if _, isSlice := lit.Type.(*ast.ArrayType); !isSlice {
			return
		}
		for _, el := range lit.Elts {
			if isZero(el) {
				pass.Report(el.Pos(), "tick list contains literal tick 0, which the no-zero convention excludes")
			}
		}
	}
}

// checkCall flags interval.New / interval.Must calls whose endpoint
// arguments are literal 0.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	name := calleeName(call.Fun)
	if name != "interval.New" && name != "interval.Must" && name != "New" && name != "Must" {
		return
	}
	// Only the two-endpoint constructors of the interval package: guard
	// against unrelated New/Must by requiring ≥2 args when unqualified.
	if (name == "New" || name == "Must") && !strings.HasSuffix(pass.Dir, "interval") {
		return
	}
	for i, arg := range call.Args {
		if i >= 2 {
			break
		}
		if isZero(arg) {
			pass.Report(arg.Pos(),
				"%s called with literal tick 0, which the no-zero convention excludes (the tick before 1 is -1)", name)
		}
	}
}

// checkComparison flags ==, !=, <, <=, >, >= between two TickAt(...) calls
// whose granularity arguments name different granularities: ticks count
// different units and comparing them needs an explicit conversion.
func checkComparison(pass *analysis.Pass, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	gx, okx := tickAtGran(bin.X)
	gy, oky := tickAtGran(bin.Y)
	if okx && oky && gx != gy {
		pass.Report(bin.OpPos,
			"comparing ticks of different granularities (%s vs %s) without conversion", gx, gy)
	}
}

// tickAtGran matches a call to a function or method named TickAt and
// returns the rendered granularity argument when it is a plain selector or
// identifier (chronology.Day, Day, ...).
func tickAtGran(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	name := calleeName(call.Fun)
	if name != "TickAt" && !strings.HasSuffix(name, ".TickAt") {
		return "", false
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr:
		if x, ok := arg.X.(*ast.Ident); ok {
			return x.Name + "." + arg.Sel.Name, true
		}
	case *ast.Ident:
		return arg.Name, true
	}
	return "", false
}

// typeName returns the bare name of a (possibly qualified, possibly
// slice/array) type expression: interval.Interval → "Interval",
// []chronology.Tick → "Tick".
func typeName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.SelectorExpr:
		return tt.Sel.Name
	case *ast.ArrayType:
		return typeName(tt.Elt)
	case *ast.StarExpr:
		return typeName(tt.X)
	}
	return ""
}

// calleeName renders the called function as "name" or "pkg.name".
func calleeName(fun ast.Expr) string {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return ""
}

// isZero reports whether e is the integer literal 0 (in any base), possibly
// parenthesized, negated, or wrapped in a Tick conversion.
func isZero(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if v.Kind != token.INT {
			return false
		}
		n, err := strconv.ParseInt(v.Value, 0, 64)
		return err == nil && n == 0
	case *ast.UnaryExpr:
		return v.Op == token.SUB && isZero(v.X)
	case *ast.CallExpr:
		// chronology.Tick(0) and Tick(0) conversions.
		name := calleeName(v.Fun)
		if (name == "Tick" || strings.HasSuffix(name, ".Tick")) && len(v.Args) == 1 {
			return isZero(v.Args[0])
		}
	}
	return false
}
