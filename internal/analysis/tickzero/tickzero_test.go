package tickzero_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calsys/internal/analysis"
	"calsys/internal/analysis/tickzero"
)

const badSrc = `package bad

import (
	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

func f(ch *chronology.Chronology, c chronology.Civil) {
	_ = interval.Interval{Lo: 0, Hi: 5}           // want Lo flagged
	_ = interval.Interval{0, 5}                   // want positional flagged
	_, _ = interval.New(0, 10)                    // want arg flagged
	_ = []chronology.Tick{0, 3}                   // want element flagged
	_ = []chronology.Tick{chronology.Tick(0)}     // want conversion flagged
	if ch.TickAt(chronology.Day, c) == ch.TickAt(chronology.Week, c) { // want comparison flagged
		return
	}
}
`

const goodSrc = `package good

import (
	"calsys/internal/chronology"
	"calsys/internal/core/interval"
)

func g(ch *chronology.Chronology, c chronology.Civil, lo chronology.Tick) {
	_ = interval.Interval{}                    // zero-value sentinel: fine
	_ = interval.Interval{Lo: lo, Hi: 5}       // variables: fine
	_, _ = interval.New(-1, 1)                 // -1 precedes 1: fine
	_ = []chronology.Tick{1, -1}               // fine
	if ch.TickAt(chronology.Day, c) == ch.TickAt(chronology.Day, c) { // same gran: fine
		return
	}
}
`

const testOnlySrc = `package bad

import "calsys/internal/core/interval"

func h() {
	// Deliberate invalid input in a test: skipped unless IncludeTests.
	_, _ = interval.New(0, 5)
}
`

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTickZeroFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "bad.go", badSrc)
	diags, err := analysis.Run([]string{dir}, []*analysis.Analyzer{tickzero.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 6 {
		t.Fatalf("want 6 findings, got %d:\n%v", len(diags), diags)
	}
	wants := []string{
		"endpoint Lo is literal tick 0",
		"endpoint is literal tick 0",
		"interval.New called with literal tick 0",
		"tick list contains literal tick 0",
		"tick list contains literal tick 0",
		"different granularities (chronology.Day vs chronology.Week)",
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag[%d] = %s, want %q", i, diags[i], want)
		}
	}
	for _, d := range diags {
		if d.Pos.Line == 0 || d.Analyzer != "tickzero" {
			t.Errorf("diagnostic missing position or analyzer: %+v", d)
		}
	}
}

func TestTickZeroCleanCode(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "good.go", goodSrc)
	diags, err := analysis.Run([]string{dir}, []*analysis.Analyzer{tickzero.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("clean code flagged:\n%v", diags)
	}
}

func TestTestFilesSkippedByDefault(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "good.go", goodSrc)
	writeFile(t, dir, "bad_test.go", testOnlySrc)
	diags, err := analysis.Run([]string{dir}, []*analysis.Analyzer{tickzero.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("test files should be skipped by default:\n%v", diags)
	}
	diags, err = analysis.Run([]string{dir}, []*analysis.Analyzer{tickzero.Analyzer},
		analysis.Options{IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Errorf("IncludeTests should surface the finding, got:\n%v", diags)
	}
}

func TestRecursivePatterns(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "inner")
	skipped := filepath.Join(root, "testdata")
	for _, d := range []string{sub, skipped} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(t, sub, "bad.go", badSrc)
	writeFile(t, skipped, "bad.go", badSrc)
	diags, err := analysis.Run([]string{root + "/..."}, []*analysis.Analyzer{tickzero.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 6 {
		t.Errorf("recursive pattern should reach inner but skip testdata, got %d:\n%v", len(diags), diags)
	}
}

// The repository itself must vet clean — this is what CI enforces via
// cmd/vet-calsys.
func TestRepositoryIsClean(t *testing.T) {
	diags, err := analysis.Run([]string{"../../../..."}, []*analysis.Analyzer{tickzero.Analyzer}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("repository has tickzero findings:\n%v", diags)
	}
}
