package postquel

import (
	"calsys/internal/store"
)

// expr is a scalar expression evaluated per tuple.
type expr interface{ exprNode() }

// litExpr is a literal value.
type litExpr struct{ v store.Value }

// colExpr references a column, optionally qualified: price, stocks.price,
// NEW.price, CURRENT.price.
type colExpr struct {
	qual string // "" when unqualified
	name string
}

// binExpr applies a binary operator: = != < <= > >= + - * / and or.
type binExpr struct {
	op   string
	l, r expr
}

// notExpr negates a boolean.
type notExpr struct{ x expr }

// callExpr invokes a builtin or user-defined function.
type callExpr struct {
	name string
	args []expr
}

// calMemberExpr tests whether a date column falls inside a calendar
// expression (the incal(col, "expr") builtin gets its own node so the
// calendar is evaluated once per query, not per row).
type calMemberExpr struct {
	arg expr
	src string // calendar expression source
}

func (*litExpr) exprNode()       {}
func (*colExpr) exprNode()       {}
func (*binExpr) exprNode()       {}
func (*notExpr) exprNode()       {}
func (*callExpr) exprNode()      {}
func (*calMemberExpr) exprNode() {}

// target is one retrieve target: an expression with an output name, or an
// aggregate over an expression.
type target struct {
	name string
	x    expr
	agg  string // "", count, sum, avg, min, max
}

// assign is one col = expr pair in append/replace.
type assign struct {
	col string
	x   expr
}

// stmt is a parsed Postquel statement.
type stmt interface{ stmtNode() }

type createTableStmt struct {
	table string
	cols  []store.Column
}

type createIndexStmt struct {
	table string
	col   string
}

type appendStmt struct {
	table   string
	assigns []assign
}

type retrieveStmt struct {
	targets []target
	table   string
	onCal   string // calendar expression source ("" when absent)
	onCol   string // date column the on-clause filters ("" = first date col)
	where   expr   // nil when absent
}

type replaceStmt struct {
	table   string
	assigns []assign
	where   expr
}

type deleteStmt struct {
	table string
	where expr
}

type defineCalendarStmt struct {
	name   string
	script string // derivation script source
	gran   string // optional granularity name
	points []int64
	stored bool
}

type defineRuleStmt struct {
	name     string
	temporal bool
	calExpr  string // temporal rules
	event    string // event rules
	table    string
	where    expr
	actions  []stmt // the do-block commands
}

type dropStmt struct {
	kind string // "calendar" | "rule" | "table"
	name string
}

type showStmt struct {
	kind string // "calendar" | "rule" | "tables"
	name string
}

func (*createTableStmt) stmtNode()    {}
func (*createIndexStmt) stmtNode()    {}
func (*appendStmt) stmtNode()         {}
func (*retrieveStmt) stmtNode()       {}
func (*replaceStmt) stmtNode()        {}
func (*deleteStmt) stmtNode()         {}
func (*defineCalendarStmt) stmtNode() {}
func (*defineRuleStmt) stmtNode()     {}
func (*dropStmt) stmtNode()           {}
func (*showStmt) stmtNode()           {}
