package postquel

import (
	"strings"
	"testing"

	"calsys/internal/chronology"
	"calsys/internal/rules"
)

// Event rules with temporal conditions: the where clause uses incal so the
// rule only fires when the incoming tuple's date falls inside a calendar —
// the paper's "Condition includes temporal conditions" case of §4.
func TestEventRuleWithTemporalCondition(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create trades (sym text, day date, px float)`)
	mustExec(t, e, `create flagged (sym text, day date)`)
	mustExec(t, e, `define calendar Tuesdays as "[2]/DAYS:during:WEEKS"`)
	mustExec(t, e, `define rule tuesday_trades on append to trades
		where incal(NEW.day, Tuesdays)
		do ( append flagged (sym = NEW.sym, day = NEW.day) )`)
	// Jan 5 1993 is a Tuesday; Jan 6 is not.
	mustExec(t, e, `append trades (sym = "A", day = "1993-01-05", px = 1.0)`)
	mustExec(t, e, `append trades (sym = "B", day = "1993-01-06", px = 2.0)`)
	mustExec(t, e, `append trades (sym = "C", day = "1993-01-12", px = 3.0)`)
	res := mustExec(t, e, `retrieve (flagged.sym)`)
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].S)
	}
	if strings.Join(got, ",") != "A,C" {
		t.Errorf("flagged = %v, want A,C", got)
	}
}

// A cascade: rule 1's action appends to a table watched by rule 2.
func TestRuleCascade(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create a (v int)`)
	mustExec(t, e, `create b (v int)`)
	mustExec(t, e, `create c (v int)`)
	mustExec(t, e, `define rule ab on append to a do ( append b (v = NEW.v + 1) )`)
	mustExec(t, e, `define rule bc on append to b do ( append c (v = NEW.v + 1) )`)
	mustExec(t, e, `append a (v = 1)`)
	res := mustExec(t, e, `retrieve (c.v)`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Errorf("cascade result = %v", res.Rows)
	}
}

// An unbounded cascade trips the recursion guard, and the whole transaction
// (including the rule effects) rolls back.
func TestRuleCascadeBounded(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create loopy (v int)`)
	mustExec(t, e, `define rule self on append to loopy do ( append loopy (v = NEW.v + 1) )`)
	if _, err := e.ExecOne(`append loopy (v = 1)`); err == nil {
		t.Fatal("self-appending rule should abort")
	}
	res := mustExec(t, e, `retrieve (count(loopy.v))`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("rows after aborted cascade = %v (must roll back)", res.Rows[0][0])
	}
}

// A rule on delete sees CURRENT; a rule on replace sees both.
func TestRuleTupleVariables(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create s (k text, v int)`)
	mustExec(t, e, `create log (what text, oldv int, newv int)`)
	mustExec(t, e, `define rule on_del on delete to s
		do ( append log (what = "del", oldv = CURRENT.v, newv = 0) )`)
	mustExec(t, e, `define rule on_rep on replace to s
		do ( append log (what = "rep", oldv = CURRENT.v, newv = NEW.v) )`)
	mustExec(t, e, `append s (k = "x", v = 10)`)
	mustExec(t, e, `replace s (v = 20) where s.k = "x"`)
	mustExec(t, e, `delete s where s.k = "x"`)
	res := mustExec(t, e, `retrieve (log.what, log.oldv, log.newv)`)
	if len(res.Rows) != 2 {
		t.Fatalf("log rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "rep" || res.Rows[0][1].I != 10 || res.Rows[0][2].I != 20 {
		t.Errorf("replace log = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "del" || res.Rows[1][1].I != 20 {
		t.Errorf("delete log = %v", res.Rows[1])
	}
}

// Temporal rule defined through Postquel whose action itself queries with a
// calendar on clause.
func TestTemporalRuleActionWithCalendar(t *testing.T) {
	e, clock := newEngine(t)
	mustExec(t, e, `create prices (day date, px float)`)
	mustExec(t, e, `create monthly (day date, px float)`)
	// Populate daily prices for January and February 1993.
	d := chronology.Civil{Year: 1993, Month: 1, Day: 1}
	for i := 0; i < 59; i++ {
		mustExec(t, e, `append prices (day = "`+d.String()+`", px = `+itoa(100+i)+`.0)`)
		d = d.AddDays(1)
	}
	mustExec(t, e, `define calendar MonthEnds as "[n]/DAYS:during:MONTHS"`)
	// On each month end, copy that day's price into the monthly table.
	mustExec(t, e, `define temporal rule snapshot on MonthEnds
		do ( append monthly (day = now(), px = 0.0) )`)
	cron, err := rules.NewDBCron(e.Rules(), chronology.SecondsPerDay, clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 59; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, e, `retrieve (monthly.day)`)
	if len(res.Rows) != 2 {
		t.Fatalf("monthly snapshots = %v", res.Rows)
	}
	if res.Rows[0][0].D != (chronology.Civil{Year: 1993, Month: 1, Day: 31}) {
		t.Errorf("first snapshot on %v", res.Rows[0][0])
	}
	if res.Rows[1][0].D != (chronology.Civil{Year: 1993, Month: 2, Day: 28}) {
		t.Errorf("second snapshot on %v", res.Rows[1][0])
	}
}
