package postquel

import (
	"fmt"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/store"
)

// evalCtx carries per-statement evaluation state: the current tuple, tuple
// bindings (NEW/CURRENT in rule actions), and the per-query cache of
// evaluated calendar expressions.
type evalCtx struct {
	eng   *Engine
	table *store.Table
	row   store.Row
	binds map[string]boundTuple
	// calCache holds calendars evaluated once per statement, keyed by
	// expression source.
	calCache map[string]*calendar.Calendar
	// calWindow is the civil window calendars are evaluated over for this
	// statement (derived from the table's date columns).
	calFrom, calTo chronology.Civil
	hasWindow      bool
}

// boundTuple is a named tuple binding (NEW, CURRENT, or a table name).
type boundTuple struct {
	schema store.Schema
	row    store.Row
}

func (c *evalCtx) lookupCol(qual, name string) (store.Value, error) {
	if qual != "" {
		if b, ok := c.binds[strings.ToUpper(qual)]; ok {
			i := b.schema.ColIndex(name)
			if i < 0 {
				return store.Null, fmt.Errorf("postquel: %s has no column %q", qual, name)
			}
			if b.row == nil {
				return store.Null, nil
			}
			return b.row[i], nil
		}
		if c.table == nil || !strings.EqualFold(qual, c.table.Name) {
			return store.Null, fmt.Errorf("postquel: unknown tuple variable %q", qual)
		}
	}
	if c.table == nil {
		return store.Null, fmt.Errorf("postquel: column %q outside a table context", name)
	}
	i := c.table.Schema.ColIndex(name)
	if i < 0 {
		return store.Null, fmt.Errorf("postquel: table %s has no column %q", c.table.Name, name)
	}
	if c.row == nil {
		return store.Null, fmt.Errorf("postquel: column %q outside a tuple context", name)
	}
	return c.row[i], nil
}

func (c *evalCtx) eval(x expr) (store.Value, error) {
	switch n := x.(type) {
	case *litExpr:
		return n.v, nil
	case *colExpr:
		return c.lookupCol(n.qual, n.name)
	case *notExpr:
		v, err := c.eval(n.x)
		if err != nil {
			return store.Null, err
		}
		if v.T != store.TBool {
			return store.Null, fmt.Errorf("postquel: not applied to %v", v.T)
		}
		return store.NewBool(!v.B), nil
	case *binExpr:
		return c.evalBin(n)
	case *callExpr:
		return c.evalCall(n)
	case *calMemberExpr:
		return c.evalCalMember(n)
	}
	return store.Null, fmt.Errorf("postquel: cannot evaluate %T", x)
}

func (c *evalCtx) evalBool(x expr) (bool, error) {
	v, err := c.eval(x)
	if err != nil {
		return false, err
	}
	if v.T != store.TBool {
		return false, fmt.Errorf("postquel: condition evaluates to %v, not bool", v.T)
	}
	return v.B, nil
}

// normalizePair coerces text to date when compared with a date.
func normalizePair(l, r store.Value) (store.Value, store.Value, error) {
	if l.T == store.TDate && r.T == store.TText {
		rr, err := r.CoerceTo(store.TDate)
		return l, rr, err
	}
	if l.T == store.TText && r.T == store.TDate {
		ll, err := l.CoerceTo(store.TDate)
		return ll, r, err
	}
	return l, r, nil
}

func (c *evalCtx) evalBin(n *binExpr) (store.Value, error) {
	// Short-circuit booleans.
	if n.op == "and" || n.op == "or" {
		lb, err := c.evalBool(n.l)
		if err != nil {
			return store.Null, err
		}
		if n.op == "and" && !lb {
			return store.NewBool(false), nil
		}
		if n.op == "or" && lb {
			return store.NewBool(true), nil
		}
		rb, err := c.evalBool(n.r)
		if err != nil {
			return store.Null, err
		}
		return store.NewBool(rb), nil
	}
	l, err := c.eval(n.l)
	if err != nil {
		return store.Null, err
	}
	r, err := c.eval(n.r)
	if err != nil {
		return store.Null, err
	}
	l, r, err = normalizePair(l, r)
	if err != nil {
		return store.Null, err
	}
	switch n.op {
	case "=", "!=":
		eq := store.Equal(l, r)
		if n.op == "!=" {
			eq = !eq
		}
		return store.NewBool(eq), nil
	case "<", "<=", ">", ">=":
		cmp, err := store.Compare(l, r)
		if err != nil {
			return store.Null, err
		}
		var b bool
		switch n.op {
		case "<":
			b = cmp < 0
		case "<=":
			b = cmp <= 0
		case ">":
			b = cmp > 0
		case ">=":
			b = cmp >= 0
		}
		return store.NewBool(b), nil
	case "+", "-", "*", "/":
		return arith(n.op, l, r)
	}
	return store.Null, fmt.Errorf("postquel: unknown operator %q", n.op)
}

func arith(op string, l, r store.Value) (store.Value, error) {
	// Date arithmetic: date ± int days; date - date = days.
	if l.T == store.TDate {
		switch {
		case r.T == store.TInt && (op == "+" || op == "-"):
			d := r.I
			if op == "-" {
				d = -d
			}
			return store.NewDate(l.D.AddDays(d)), nil
		case r.T == store.TDate && op == "-":
			return store.NewInt(l.D.Rata() - r.D.Rata()), nil
		}
		return store.Null, fmt.Errorf("postquel: unsupported date arithmetic %v %s %v", l.T, op, r.T)
	}
	if l.T == store.TText && r.T == store.TText && op == "+" {
		return store.NewText(l.S + r.S), nil
	}
	numeric := func(v store.Value) (float64, bool, error) {
		switch v.T {
		case store.TInt:
			return float64(v.I), true, nil
		case store.TFloat:
			return v.F, false, nil
		}
		return 0, false, fmt.Errorf("postquel: %v is not numeric", v.T)
	}
	lf, lInt, err := numeric(l)
	if err != nil {
		return store.Null, err
	}
	rf, rInt, err := numeric(r)
	if err != nil {
		return store.Null, err
	}
	if lInt && rInt && op != "/" {
		switch op {
		case "+":
			return store.NewInt(l.I + r.I), nil
		case "-":
			return store.NewInt(l.I - r.I), nil
		case "*":
			return store.NewInt(l.I * r.I), nil
		}
	}
	switch op {
	case "+":
		return store.NewFloat(lf + rf), nil
	case "-":
		return store.NewFloat(lf - rf), nil
	case "*":
		return store.NewFloat(lf * rf), nil
	case "/":
		if rf == 0 {
			return store.Null, fmt.Errorf("postquel: division by zero")
		}
		return store.NewFloat(lf / rf), nil
	}
	return store.Null, fmt.Errorf("postquel: unknown arithmetic %q", op)
}

func (c *evalCtx) evalCall(n *callExpr) (store.Value, error) {
	args := make([]store.Value, len(n.args))
	for i, a := range n.args {
		v, err := c.eval(a)
		if err != nil {
			return store.Null, err
		}
		args[i] = v
	}
	switch strings.ToLower(n.name) {
	case "date":
		if len(args) != 1 || args[0].T != store.TText {
			return store.Null, fmt.Errorf("postquel: date() takes one string")
		}
		return args[0].CoerceTo(store.TDate)
	case "now":
		if c.eng.clock == nil {
			return store.Null, fmt.Errorf("postquel: now() needs a clock")
		}
		return store.NewDate(c.eng.cal.Chron().CivilOf(c.eng.clock.Now())), nil
	case "year", "month", "day", "weekday":
		if len(args) != 1 || args[0].T != store.TDate {
			return store.Null, fmt.Errorf("postquel: %s() takes one date", n.name)
		}
		d := args[0].D
		switch strings.ToLower(n.name) {
		case "year":
			return store.NewInt(int64(d.Year)), nil
		case "month":
			return store.NewInt(int64(d.Month)), nil
		case "day":
			return store.NewInt(int64(d.Day)), nil
		default:
			return store.NewInt(int64(d.Weekday())), nil
		}
	case "daytick":
		if len(args) != 1 || args[0].T != store.TDate {
			return store.Null, fmt.Errorf("postquel: daytick() takes one date")
		}
		return store.NewInt(c.eng.cal.Chron().DayTick(args[0].D)), nil
	}
	// User-defined functions registered with the store.
	return c.eng.db.CallFunc(n.name, args)
}

// evalCalMember tests a date (or day tick) against a calendar expression,
// evaluating the calendar once per statement.
func (c *evalCtx) evalCalMember(n *calMemberExpr) (store.Value, error) {
	v, err := c.eval(n.arg)
	if err != nil {
		return store.Null, err
	}
	cal, err := c.calendarFor(n.src)
	if err != nil {
		return store.Null, err
	}
	ch := c.eng.cal.Chron()
	var tick chronology.Tick
	switch v.T {
	case store.TDate:
		tick = ch.TickAt(cal.Granularity(), ch.EpochSecondsOf(v.D))
	case store.TInt:
		tick = v.I
	case store.TNull:
		return store.NewBool(false), nil
	default:
		return store.Null, fmt.Errorf("postquel: incal argument must be a date or tick, got %v", v.T)
	}
	return store.NewBool(cal.ToSet().Contains(tick)), nil
}

// calendarFor evaluates a calendar expression over the statement's window,
// caching by source.
func (c *evalCtx) calendarFor(src string) (*calendar.Calendar, error) {
	if cal, ok := c.calCache[src]; ok {
		return cal, nil
	}
	if !c.hasWindow {
		return nil, fmt.Errorf("postquel: no rows with dates to bound calendar %q", src)
	}
	cal, err := c.eng.cal.EvalExpr(src, c.calFrom, c.calTo)
	if err != nil {
		return nil, err
	}
	flat := cal.Flatten()
	if c.calCache == nil {
		c.calCache = map[string]*calendar.Calendar{}
	}
	c.calCache[src] = flat
	return flat, nil
}

// computeWindow derives the statement's calendar-evaluation window from the
// date columns of the table's live rows.
func (c *evalCtx) computeWindow() {
	if c.table == nil {
		return
	}
	var dateCols []int
	for i, col := range c.table.Schema.Cols {
		if col.Type == store.TDate {
			dateCols = append(dateCols, i)
		}
	}
	if len(dateCols) == 0 {
		return
	}
	first := true
	c.table.Scan(func(_ int64, row store.Row) bool {
		for _, i := range dateCols {
			if row[i].T != store.TDate {
				continue
			}
			d := row[i].D
			if first {
				c.calFrom, c.calTo, first = d, d, false
				continue
			}
			if d.Before(c.calFrom) {
				c.calFrom = d
			}
			if c.calTo.Before(d) {
				c.calTo = d
			}
		}
		return true
	})
	c.hasWindow = !first
}
