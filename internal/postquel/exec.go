package postquel

import (
	"fmt"
	"sort"
	"strings"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/rules"
	"calsys/internal/store"
)

// Engine executes Postquel statements against the store, the calendar
// catalog and the rule system.
type Engine struct {
	db    *store.DB
	cal   *caldb.Manager
	rules *rules.Engine
	clock rules.Clock
}

// NewEngine wires a query engine to its substrates. clock may be nil, in
// which case now() and temporal-rule definition are unavailable until
// SetClock.
func NewEngine(cal *caldb.Manager, re *rules.Engine, clock rules.Clock) *Engine {
	return &Engine{db: cal.DB(), cal: cal, rules: re, clock: clock}
}

// SetClock installs the clock used by now() and temporal-rule definition.
func (e *Engine) SetClock(c rules.Clock) { e.clock = c }

// Cal exposes the calendar catalog.
func (e *Engine) Cal() *caldb.Manager { return e.cal }

// Rules exposes the rule engine.
func (e *Engine) Rules() *rules.Engine { return e.rules }

// DB exposes the store.
func (e *Engine) DB() *store.DB { return e.db }

// Result is the outcome of one statement.
type Result struct {
	Cols []string
	Rows [][]store.Value
	Msg  string
}

// String renders a result as an aligned text table (or its message).
func (r Result) String() string {
	if len(r.Cols) == 0 {
		return r.Msg
	}
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	for _, row := range cells {
		b.WriteByte('\n')
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
	}
	return b.String()
}

// isDML reports whether a statement reads or writes tuples (and therefore
// runs inside a transaction); DDL and definition statements manage their own
// transactions.
func isDML(s stmt) bool {
	switch s.(type) {
	case *appendStmt, *retrieveStmt, *replaceStmt, *deleteStmt:
		return true
	}
	return false
}

// Exec parses and executes a batch of statements. Each DML statement runs in
// its own transaction; definition and DDL statements manage their own.
func (e *Engine) Exec(src string) ([]Result, error) {
	stmts, err := parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(stmts))
	for _, s := range stmts {
		var res Result
		if isDML(s) {
			err = e.db.RunTxn(func(tx *store.Txn) error {
				var err error
				res, err = e.execStmt(tx, s, nil)
				return err
			})
		} else {
			res, err = e.execStmt(nil, s, nil)
		}
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ExecOne is Exec for a single statement.
func (e *Engine) ExecOne(src string) (Result, error) {
	rs, err := e.Exec(src)
	if err != nil {
		return Result{}, err
	}
	return rs[len(rs)-1], nil
}

func (e *Engine) execStmt(tx *store.Txn, s stmt, binds map[string]boundTuple) (Result, error) {
	switch n := s.(type) {
	case *createTableStmt:
		if tx != nil {
			return Result{}, fmt.Errorf("postquel: create is not allowed inside a rule action")
		}
		schema, err := store.NewSchema(n.cols...)
		if err != nil {
			return Result{}, err
		}
		if err := e.db.CreateTable(n.table, schema); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("created table %s", n.table)}, nil
	case *createIndexStmt:
		if tx != nil {
			return Result{}, fmt.Errorf("postquel: create is not allowed inside a rule action")
		}
		if err := e.db.CreateIndex(n.table, n.col); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("created index on %s(%s)", n.table, n.col)}, nil
	case *appendStmt:
		return e.execAppend(tx, n, binds)
	case *retrieveStmt:
		return e.execRetrieve(tx, n, binds)
	case *replaceStmt:
		return e.execReplace(tx, n, binds)
	case *deleteStmt:
		return e.execDelete(tx, n, binds)
	case *defineCalendarStmt:
		if tx != nil {
			return Result{}, fmt.Errorf("postquel: define is not allowed inside a rule action")
		}
		return e.execDefineCalendar(n)
	case *defineRuleStmt:
		if tx != nil {
			return Result{}, fmt.Errorf("postquel: define is not allowed inside a rule action")
		}
		return e.execDefineRule(n)
	case *dropStmt:
		if tx != nil {
			return Result{}, fmt.Errorf("postquel: drop is not allowed inside a rule action")
		}
		return e.execDrop(n)
	case *showStmt:
		return e.execShow(n)
	}
	return Result{}, fmt.Errorf("postquel: unhandled statement %T", s)
}

func (e *Engine) execAppend(tx *store.Txn, n *appendStmt, binds map[string]boundTuple) (Result, error) {
	tab, ok := e.db.Table(n.table)
	if !ok {
		return Result{}, fmt.Errorf("postquel: no table %q", n.table)
	}
	ctx := &evalCtx{eng: e, binds: binds}
	row := make(store.Row, len(tab.Schema.Cols))
	for i := range row {
		row[i] = store.Null
	}
	for _, a := range n.assigns {
		i := tab.Schema.ColIndex(a.col)
		if i < 0 {
			return Result{}, fmt.Errorf("postquel: table %s has no column %q", n.table, a.col)
		}
		v, err := ctx.eval(a.x)
		if err != nil {
			return Result{}, err
		}
		row[i] = v
	}
	if _, err := tx.Append(tab.Name, row); err != nil {
		return Result{}, err
	}
	return Result{Msg: "appended 1 tuple"}, nil
}

// validateCols statically checks every column reference in an expression
// against the statement's table, so misspelled columns fail even on empty
// tables. NEW and CURRENT resolve at run time.
func validateCols(tab *store.Table, x expr) error {
	if x == nil {
		return nil
	}
	switch n := x.(type) {
	case *litExpr:
		return nil
	case *colExpr:
		if n.qual == "" || strings.EqualFold(n.qual, tab.Name) {
			if tab.Schema.ColIndex(n.name) < 0 {
				return fmt.Errorf("postquel: table %s has no column %q", tab.Name, n.name)
			}
			return nil
		}
		if strings.EqualFold(n.qual, "NEW") || strings.EqualFold(n.qual, "CURRENT") {
			return nil
		}
		return fmt.Errorf("postquel: unknown tuple variable %q", n.qual)
	case *binExpr:
		if err := validateCols(tab, n.l); err != nil {
			return err
		}
		return validateCols(tab, n.r)
	case *notExpr:
		return validateCols(tab, n.x)
	case *callExpr:
		for _, a := range n.args {
			if err := validateCols(tab, a); err != nil {
				return err
			}
		}
		return nil
	case *calMemberExpr:
		return validateCols(tab, n.arg)
	}
	return nil
}

func (e *Engine) execRetrieve(tx *store.Txn, n *retrieveStmt, binds map[string]boundTuple) (Result, error) {
	tab, ok := e.db.Table(n.table)
	if !ok {
		return Result{}, fmt.Errorf("postquel: no table %q", n.table)
	}
	for _, t := range n.targets {
		if err := validateCols(tab, t.x); err != nil {
			return Result{}, err
		}
	}
	if err := validateCols(tab, n.where); err != nil {
		return Result{}, err
	}
	ctx := &evalCtx{eng: e, table: tab, binds: binds}
	ctx.computeWindow()

	// The on-clause calendar filter (the paper's "Retrieve (stock.price) on
	// expiration-date").
	var onCal *calendar.Calendar
	onCol := -1
	if n.onCal != "" {
		var err error
		onCal, err = ctx.calendarFor(n.onCal)
		if err != nil {
			return Result{}, err
		}
		if n.onCol != "" {
			onCol = tab.Schema.ColIndex(n.onCol)
			if onCol < 0 {
				return Result{}, fmt.Errorf("postquel: table %s has no column %q", n.table, n.onCol)
			}
		} else {
			for i, col := range tab.Schema.Cols {
				if col.Type == store.TDate {
					onCol = i
					break
				}
			}
			if onCol < 0 {
				return Result{}, fmt.Errorf("postquel: table %s has no date column for the on clause", n.table)
			}
		}
	}

	aggMode := false
	for _, t := range n.targets {
		if t.agg != "" {
			aggMode = true
		}
	}
	if aggMode {
		for _, t := range n.targets {
			if t.agg == "" {
				return Result{}, fmt.Errorf("postquel: mixing aggregates and plain targets is not supported")
			}
		}
	}

	res := Result{}
	for _, t := range n.targets {
		res.Cols = append(res.Cols, t.name)
	}
	aggs := make([]*aggState, len(n.targets))
	for i := range aggs {
		aggs[i] = &aggState{}
	}

	ch := e.cal.Chron()
	var rowErr error
	err := tx.Retrieve(tab.Name, nil, func(_ int64, row store.Row) bool {
		ctx.row = row
		if onCal != nil {
			v := row[onCol]
			if v.T != store.TDate {
				return true
			}
			tick := ch.TickAt(onCal.Granularity(), ch.EpochSecondsOf(v.D))
			if !onCal.ToSet().Contains(tick) {
				return true
			}
		}
		if n.where != nil {
			keep, err := ctx.evalBool(n.where)
			if err != nil {
				rowErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		if aggMode {
			for i, t := range n.targets {
				v, err := ctx.eval(t.x)
				if err != nil {
					rowErr = err
					return false
				}
				if err := aggs[i].add(t.agg, v); err != nil {
					rowErr = err
					return false
				}
			}
			return true
		}
		outRow := make([]store.Value, len(n.targets))
		for i, t := range n.targets {
			v, err := ctx.eval(t.x)
			if err != nil {
				rowErr = err
				return false
			}
			outRow[i] = v
		}
		res.Rows = append(res.Rows, outRow)
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if rowErr != nil {
		return Result{}, rowErr
	}
	if aggMode {
		outRow := make([]store.Value, len(n.targets))
		for i, t := range n.targets {
			outRow[i] = aggs[i].result(t.agg)
		}
		res.Rows = append(res.Rows, outRow)
	}
	return res, nil
}

// aggState accumulates one aggregate target.
type aggState struct {
	count int64
	sum   float64
	min   store.Value
	max   store.Value
	any   bool
}

func (a *aggState) add(agg string, v store.Value) error {
	if v.IsNull() {
		return nil
	}
	a.count++
	switch agg {
	case "sum", "avg":
		switch v.T {
		case store.TInt:
			a.sum += float64(v.I)
		case store.TFloat:
			a.sum += v.F
		default:
			return fmt.Errorf("postquel: %s over non-numeric %v", agg, v.T)
		}
	case "min", "max":
		if !a.any {
			a.min, a.max = v, v
			a.any = true
			return nil
		}
		if c, err := store.Compare(v, a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
		if c, err := store.Compare(v, a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	a.any = true
	return nil
}

func (a *aggState) result(agg string) store.Value {
	switch agg {
	case "count":
		return store.NewInt(a.count)
	case "sum":
		return store.NewFloat(a.sum)
	case "avg":
		if a.count == 0 {
			return store.Null
		}
		return store.NewFloat(a.sum / float64(a.count))
	case "min":
		if !a.any {
			return store.Null
		}
		return a.min
	case "max":
		if !a.any {
			return store.Null
		}
		return a.max
	}
	return store.Null
}

func (e *Engine) execReplace(tx *store.Txn, n *replaceStmt, binds map[string]boundTuple) (Result, error) {
	tab, ok := e.db.Table(n.table)
	if !ok {
		return Result{}, fmt.Errorf("postquel: no table %q", n.table)
	}
	ctx := &evalCtx{eng: e, table: tab, binds: binds}
	ctx.computeWindow()
	rids, err := e.matchRids(ctx, tab, n.where)
	if err != nil {
		return Result{}, err
	}
	for _, rid := range rids {
		row, ok := tab.Get(rid)
		if !ok {
			continue
		}
		newRow := row.Clone()
		ctx.row = row
		for _, a := range n.assigns {
			i := tab.Schema.ColIndex(a.col)
			if i < 0 {
				return Result{}, fmt.Errorf("postquel: table %s has no column %q", n.table, a.col)
			}
			v, err := ctx.eval(a.x)
			if err != nil {
				return Result{}, err
			}
			newRow[i] = v
		}
		if err := tx.Replace(tab.Name, rid, newRow); err != nil {
			return Result{}, err
		}
	}
	return Result{Msg: fmt.Sprintf("replaced %d tuples", len(rids))}, nil
}

func (e *Engine) execDelete(tx *store.Txn, n *deleteStmt, binds map[string]boundTuple) (Result, error) {
	tab, ok := e.db.Table(n.table)
	if !ok {
		return Result{}, fmt.Errorf("postquel: no table %q", n.table)
	}
	ctx := &evalCtx{eng: e, table: tab, binds: binds}
	ctx.computeWindow()
	rids, err := e.matchRids(ctx, tab, n.where)
	if err != nil {
		return Result{}, err
	}
	for _, rid := range rids {
		if err := tx.Delete(tab.Name, rid); err != nil {
			return Result{}, err
		}
	}
	return Result{Msg: fmt.Sprintf("deleted %d tuples", len(rids))}, nil
}

func (e *Engine) matchRids(ctx *evalCtx, tab *store.Table, where expr) ([]int64, error) {
	var rids []int64
	var rowErr error
	tab.Scan(func(rid int64, row store.Row) bool {
		if where != nil {
			ctx.row = row
			keep, err := ctx.evalBool(where)
			if err != nil {
				rowErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		rids = append(rids, rid)
		return true
	})
	return rids, rowErr
}

func (e *Engine) execDefineCalendar(n *defineCalendarStmt) (Result, error) {
	ls := caldb.Lifespan{Lo: 1, Hi: caldb.MaxDayTick}
	gran := caldb.GranAuto
	if n.gran != "" {
		g, err := chronology.ParseGranularity(n.gran)
		if err != nil {
			return Result{}, err
		}
		gran = g
	}
	if n.stored {
		g := chronology.Day
		if gran != caldb.GranAuto {
			g = gran
		}
		cal, err := calendar.FromPoints(g, n.points)
		if err != nil {
			return Result{}, err
		}
		if err := e.cal.DefineStored(n.name, cal, ls); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("defined stored calendar %s", n.name)}, nil
	}
	if err := e.cal.DefineDerived(n.name, n.script, ls, gran); err != nil {
		return Result{}, err
	}
	return Result{Msg: fmt.Sprintf("defined calendar %s", n.name)}, nil
}

func (e *Engine) execDefineRule(n *defineRuleStmt) (Result, error) {
	if e.rules == nil {
		return Result{}, fmt.Errorf("postquel: no rule engine attached")
	}
	action := &postquelAction{eng: e, stmts: n.actions, desc: describeActions(n.actions)}
	if n.temporal {
		if e.clock == nil {
			return Result{}, fmt.Errorf("postquel: temporal rules need a clock")
		}
		now := e.clock.Now()
		if err := e.rules.DefineTemporalRule(n.name, n.calExpr, action, now); err != nil {
			return Result{}, err
		}
		return Result{Msg: fmt.Sprintf("defined temporal rule %s", n.name)}, nil
	}
	op, err := store.ParseEventOp(n.event)
	if err != nil {
		return Result{}, err
	}
	var cond rules.Condition
	if n.where != nil {
		whereExpr := n.where
		table := n.table
		cond = func(tx *store.Txn, ev store.Event) (bool, error) {
			ctx, err := e.ruleCtx(table, ev, nil)
			if err != nil {
				return false, err
			}
			return ctx.evalBool(whereExpr)
		}
	}
	if err := e.rules.DefineEventRule(n.name, op, n.table, cond, action); err != nil {
		return Result{}, err
	}
	return Result{Msg: fmt.Sprintf("defined rule %s", n.name)}, nil
}

// ruleCtx builds an evaluation context with NEW and CURRENT bound from an
// event.
func (e *Engine) ruleCtx(table string, ev store.Event, tx *store.Txn) (*evalCtx, error) {
	tab, ok := e.db.Table(table)
	if !ok {
		return nil, fmt.Errorf("postquel: rule table %q missing", table)
	}
	binds := map[string]boundTuple{
		"NEW":     {schema: tab.Schema, row: ev.New},
		"CURRENT": {schema: tab.Schema, row: ev.Old},
	}
	ctx := &evalCtx{eng: e, table: tab, binds: binds}
	ctx.computeWindow()
	return ctx, nil
}

func describeActions(stmts []stmt) string {
	kinds := make([]string, len(stmts))
	for i, s := range stmts {
		switch s.(type) {
		case *appendStmt:
			kinds[i] = "append"
		case *replaceStmt:
			kinds[i] = "replace"
		case *deleteStmt:
			kinds[i] = "delete"
		case *retrieveStmt:
			kinds[i] = "retrieve"
		default:
			kinds[i] = "stmt"
		}
	}
	return "do(" + strings.Join(kinds, ",") + ")"
}

// postquelAction runs query-language commands as a rule action, with NEW and
// CURRENT bound for event rules.
type postquelAction struct {
	eng   *Engine
	stmts []stmt
	desc  string
}

// Execute implements rules.Action.
func (a *postquelAction) Execute(tx *store.Txn, ev *store.Event, firedAt int64) error {
	var binds map[string]boundTuple
	if ev != nil {
		tab, ok := a.eng.db.Table(ev.Table)
		if !ok {
			return fmt.Errorf("postquel: event table %q missing", ev.Table)
		}
		binds = map[string]boundTuple{
			"NEW":     {schema: tab.Schema, row: ev.New},
			"CURRENT": {schema: tab.Schema, row: ev.Old},
		}
	}
	for _, s := range a.stmts {
		if _, err := a.eng.execStmt(tx, s, binds); err != nil {
			return err
		}
	}
	return nil
}

// Describe implements rules.Action.
func (a *postquelAction) Describe() string { return a.desc }

func (e *Engine) execDrop(n *dropStmt) (Result, error) {
	switch n.kind {
	case "calendar":
		if err := e.cal.Drop(n.name); err != nil {
			return Result{}, err
		}
	case "rule":
		if e.rules == nil {
			return Result{}, fmt.Errorf("postquel: no rule engine attached")
		}
		if err := e.rules.DropRule(n.name); err != nil {
			return Result{}, err
		}
	case "table":
		if err := e.db.DropTable(n.name); err != nil {
			return Result{}, err
		}
	}
	return Result{Msg: fmt.Sprintf("dropped %s %s", n.kind, n.name)}, nil
}

func (e *Engine) execShow(n *showStmt) (Result, error) {
	switch n.kind {
	case "tables":
		res := Result{Cols: []string{"table"}}
		for _, name := range e.db.TableNames() {
			res.Rows = append(res.Rows, []store.Value{store.NewText(name)})
		}
		return res, nil
	case "calendars":
		res := Result{Cols: []string{"calendar"}}
		names := e.cal.Names()
		sort.Strings(names)
		for _, name := range names {
			res.Rows = append(res.Rows, []store.Value{store.NewText(name)})
		}
		return res, nil
	case "rules":
		if e.rules == nil {
			return Result{}, fmt.Errorf("postquel: no rule engine attached")
		}
		res := Result{Cols: []string{"rule"}}
		names := e.rules.RuleNames()
		sort.Strings(names)
		for _, name := range names {
			res.Rows = append(res.Rows, []store.Value{store.NewText(name)})
		}
		return res, nil
	case "calendar":
		row, err := e.cal.FigureRow(n.name)
		if err != nil {
			return Result{}, err
		}
		return Result{Msg: row}, nil
	case "rule":
		if e.rules == nil {
			return Result{}, fmt.Errorf("postquel: no rule engine attached")
		}
		row, err := e.rules.RuleInfoRow(n.name)
		if err != nil {
			return Result{}, err
		}
		return Result{Msg: row}, nil
	}
	return Result{}, fmt.Errorf("postquel: unknown show %q", n.kind)
}
