package postquel

import (
	"fmt"
	"strings"

	"calsys/internal/store"
)

// parser is a recursive-descent parser over the token stream.
//
// Statement grammar (keywords case-insensitive):
//
//	create <table> (col type, ...)
//	create index on <table> (col)
//	append <table> (col = expr, ...)
//	retrieve (targets) [from <table>] [on <calendar>] [using <col>] [where expr]
//	replace <table> (col = expr, ...) [where expr]
//	delete <table> [where expr]
//	define calendar <name> as <calendar-or-script-string> [granularity g]
//	define stored calendar <name> values (t1, t2, ...)
//	define rule <name> on <event> to <table> [where expr] do ( commands )
//	define temporal rule <name> on <calendar> do ( commands )
//	drop calendar|rule|table <name>
//	show calendars|rules|tables | show calendar <name> | show rule <name>
//
// A <calendar> is either a bare calendar name or a quoted calendar-language
// expression ("[2]/DAYS:during:WEEKS").
type parser struct {
	toks []token
	i    int
}

func parse(src string) ([]stmt, error) {
	lx, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: lx.toks}
	var out []stmt
	for p.cur().kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("postquel: empty input")
	}
	return out, nil
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tName && strings.EqualFold(t.text, kw)
}

func (p *parser) eatKw(kw string) bool {
	if p.isKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return fmt.Errorf("postquel: expected %q, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tPunct || t.text != s {
		return fmt.Errorf("postquel: expected %q, got %q", s, t.text)
	}
	p.next()
	return nil
}

func (p *parser) expectName() (string, error) {
	t := p.cur()
	if t.kind != tName {
		return "", fmt.Errorf("postquel: expected name, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStmt() (stmt, error) {
	switch {
	case p.eatKw("create"):
		return p.parseCreate()
	case p.eatKw("append"):
		return p.parseAppend()
	case p.eatKw("retrieve"):
		return p.parseRetrieve()
	case p.eatKw("replace"):
		return p.parseReplace()
	case p.eatKw("delete"):
		return p.parseDelete()
	case p.eatKw("define"):
		return p.parseDefine()
	case p.eatKw("drop"):
		return p.parseDrop()
	case p.eatKw("show"):
		return p.parseShow()
	}
	return nil, fmt.Errorf("postquel: unknown statement starting with %q", p.cur().text)
}

func (p *parser) parseCreate() (stmt, error) {
	if p.eatKw("index") {
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		table, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &createIndexStmt{table: table, col: col}, nil
	}
	table, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []store.Column
	for {
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		tname, err := p.expectName()
		if err != nil {
			return nil, err
		}
		typ, err := store.ParseType(tname)
		if err != nil {
			return nil, err
		}
		cols = append(cols, store.Column{Name: name, Type: typ})
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &createTableStmt{table: table, cols: cols}, nil
}

func (p *parser) parseAssigns() ([]assign, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []assign
	for {
		col, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, assign{col: col, x: x})
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseAppend() (stmt, error) {
	table, err := p.expectName()
	if err != nil {
		return nil, err
	}
	assigns, err := p.parseAssigns()
	if err != nil {
		return nil, err
	}
	return &appendStmt{table: table, assigns: assigns}, nil
}

var aggNames = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *parser) parseRetrieve() (stmt, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &retrieveStmt{}
	for {
		tgt := target{}
		// Aggregate form: agg(expr).
		if t := p.cur(); t.kind == tName && aggNames[strings.ToLower(t.text)] &&
			p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "(" {
			tgt.agg = strings.ToLower(p.next().text)
			p.next() // (
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			tgt.x = x
			tgt.name = tgt.agg
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			tgt.x = x
			tgt.name = exprName(x)
		}
		if p.eatKw("as") {
			n, err := p.expectName()
			if err != nil {
				return nil, err
			}
			tgt.name = n
		}
		st.targets = append(st.targets, tgt)
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Table: explicit from-clause or inferred from qualified targets.
	if p.eatKw("from") {
		t, err := p.expectName()
		if err != nil {
			return nil, err
		}
		st.table = t
	} else {
		st.table = inferTable(st.targets)
	}
	if p.eatKw("on") {
		src, err := p.parseCalendarRef()
		if err != nil {
			return nil, err
		}
		st.onCal = src
		if p.eatKw("using") {
			c, err := p.expectName()
			if err != nil {
				return nil, err
			}
			st.onCol = c
		}
	}
	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	if st.table == "" {
		return nil, fmt.Errorf("postquel: retrieve cannot determine the target table; qualify a column or add from")
	}
	return st, nil
}

// parseCalendarRef accepts a bare calendar name or a quoted calendar
// expression.
func (p *parser) parseCalendarRef() (string, error) {
	t := p.cur()
	switch t.kind {
	case tString:
		p.next()
		return t.text, nil
	case tName:
		p.next()
		return t.text, nil
	}
	return "", fmt.Errorf("postquel: expected calendar name or quoted expression, got %q", t.text)
}

func exprName(x expr) string {
	switch n := x.(type) {
	case *colExpr:
		return n.name
	case *callExpr:
		return n.name
	}
	return "expr"
}

func inferTable(targets []target) string {
	for _, t := range targets {
		if name := findQual(t.x); name != "" {
			return name
		}
	}
	return ""
}

func findQual(x expr) string {
	switch n := x.(type) {
	case *colExpr:
		if n.qual != "" && !strings.EqualFold(n.qual, "NEW") && !strings.EqualFold(n.qual, "CURRENT") {
			return n.qual
		}
	case *binExpr:
		if q := findQual(n.l); q != "" {
			return q
		}
		return findQual(n.r)
	case *notExpr:
		return findQual(n.x)
	case *callExpr:
		for _, a := range n.args {
			if q := findQual(a); q != "" {
				return q
			}
		}
	case *calMemberExpr:
		return findQual(n.arg)
	}
	return ""
}

func (p *parser) parseReplace() (stmt, error) {
	table, err := p.expectName()
	if err != nil {
		return nil, err
	}
	assigns, err := p.parseAssigns()
	if err != nil {
		return nil, err
	}
	st := &replaceStmt{table: table, assigns: assigns}
	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (stmt, error) {
	table, err := p.expectName()
	if err != nil {
		return nil, err
	}
	st := &deleteStmt{table: table}
	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

func (p *parser) parseDefine() (stmt, error) {
	switch {
	case p.eatKw("calendar"):
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tString {
			return nil, fmt.Errorf("postquel: define calendar needs a quoted derivation script")
		}
		p.next()
		st := &defineCalendarStmt{name: name, script: t.text}
		if p.eatKw("granularity") {
			g, err := p.expectName()
			if err != nil {
				return nil, err
			}
			st.gran = g
		}
		return st, nil
	case p.eatKw("stored"):
		if err := p.expectKw("calendar"); err != nil {
			return nil, err
		}
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("values"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		st := &defineCalendarStmt{name: name, stored: true}
		for {
			neg := false
			if p.cur().kind == tPunct && p.cur().text == "-" {
				neg = true
				p.next()
			}
			t := p.cur()
			if t.kind != tInt {
				return nil, fmt.Errorf("postquel: stored calendar values must be integer ticks")
			}
			p.next()
			v := t.i
			if neg {
				v = -v
			}
			st.points = append(st.points, v)
			if p.cur().kind == tPunct && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if p.eatKw("granularity") {
			g, err := p.expectName()
			if err != nil {
				return nil, err
			}
			st.gran = g
		}
		return st, nil
	case p.eatKw("temporal"):
		if err := p.expectKw("rule"); err != nil {
			return nil, err
		}
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		calSrc, err := p.parseCalendarRef()
		if err != nil {
			return nil, err
		}
		actions, err := p.parseDoBlock()
		if err != nil {
			return nil, err
		}
		return &defineRuleStmt{name: name, temporal: true, calExpr: calSrc, actions: actions}, nil
	case p.eatKw("rule"):
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		event, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("to"); err != nil {
			return nil, err
		}
		table, err := p.expectName()
		if err != nil {
			return nil, err
		}
		st := &defineRuleStmt{name: name, event: event, table: table}
		if p.eatKw("where") {
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.where = w
		}
		actions, err := p.parseDoBlock()
		if err != nil {
			return nil, err
		}
		st.actions = actions
		return st, nil
	}
	return nil, fmt.Errorf("postquel: expected calendar, stored, rule or temporal after define")
}

// parseDoBlock parses do ( commands ), where commands are full statements.
func (p *parser) parseDoBlock() ([]stmt, error) {
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []stmt
	for {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.cur().kind == tPunct && p.cur().text == ")" {
			p.next()
			return out, nil
		}
	}
}

func (p *parser) parseDrop() (stmt, error) {
	kind := strings.ToLower(p.cur().text)
	if kind != "calendar" && kind != "rule" && kind != "table" {
		return nil, fmt.Errorf("postquel: drop expects calendar, rule or table")
	}
	p.next()
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	return &dropStmt{kind: kind, name: name}, nil
}

func (p *parser) parseShow() (stmt, error) {
	switch {
	case p.eatKw("calendars"):
		return &showStmt{kind: "calendars"}, nil
	case p.eatKw("rules"):
		return &showStmt{kind: "rules"}, nil
	case p.eatKw("tables"):
		return &showStmt{kind: "tables"}, nil
	case p.eatKw("calendar"):
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		return &showStmt{kind: "calendar", name: name}, nil
	case p.eatKw("rule"):
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		return &showStmt{kind: "rule", name: name}, nil
	}
	return nil, fmt.Errorf("postquel: show expects calendars, rules, tables, calendar <n> or rule <n>")
}

// --- expressions ------------------------------------------------------

// Precedence: or < and < not < comparison < additive < multiplicative.
func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.eatKw("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{x: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &binExpr{op: t.text, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tPunct && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tPunct && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &binExpr{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tPunct && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &binExpr{op: "-", l: &litExpr{v: store.NewInt(0)}, r: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.next()
		return &litExpr{v: store.NewInt(t.i)}, nil
	case tFloat:
		p.next()
		return &litExpr{v: store.NewFloat(t.f)}, nil
	case tString:
		p.next()
		return &litExpr{v: store.NewText(t.text)}, nil
	case tName:
		switch strings.ToLower(t.text) {
		case "true":
			p.next()
			return &litExpr{v: store.NewBool(true)}, nil
		case "false":
			p.next()
			return &litExpr{v: store.NewBool(false)}, nil
		case "null":
			p.next()
			return &litExpr{v: store.Null}, nil
		}
		name := p.next().text
		// Function call.
		if p.cur().kind == tPunct && p.cur().text == "(" {
			p.next()
			if strings.EqualFold(name, "incal") {
				return p.parseInCal()
			}
			var args []expr
			if !(p.cur().kind == tPunct && p.cur().text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().kind == tPunct && p.cur().text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &callExpr{name: name, args: args}, nil
		}
		// Qualified column.
		if p.cur().kind == tPunct && p.cur().text == "." {
			p.next()
			col, err := p.expectName()
			if err != nil {
				return nil, err
			}
			return &colExpr{qual: name, name: col}, nil
		}
		return &colExpr{name: name}, nil
	case tPunct:
		if t.text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("postquel: unexpected %q in expression", t.text)
}

// parseInCal parses incal(<expr>, <calendar>) after the opening paren.
func (p *parser) parseInCal() (expr, error) {
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	src, err := p.parseCalendarRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &calMemberExpr{arg: arg, src: src}, nil
}
