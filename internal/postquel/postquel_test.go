package postquel

import (
	"math/rand"
	"strings"
	"testing"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/rules"
	"calsys/internal/store"
)

func newEngine(t testing.TB) (*Engine, *rules.VirtualClock) {
	t.Helper()
	db := store.NewDB()
	ch := chronology.MustNew(chronology.DefaultEpoch)
	cal, err := caldb.New(db, ch)
	if err != nil {
		t.Fatal(err)
	}
	re, err := rules.NewEngine(cal)
	if err != nil {
		t.Fatal(err)
	}
	clock := rules.NewVirtualClock(ch.EpochSecondsOf(chronology.Civil{Year: 1993, Month: 1, Day: 1}))
	return NewEngine(cal, re, clock), clock
}

func mustExec(t *testing.T, e *Engine, src string) Result {
	t.Helper()
	res, err := e.ExecOne(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func TestCreateAppendRetrieve(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create stocks (symbol text, day date, price float)`)
	mustExec(t, e, `append stocks (symbol = "IBM", day = "1993-01-04", price = 50.25)`)
	mustExec(t, e, `append stocks (symbol = "IBM", day = "1993-01-05", price = 51.5)`)
	mustExec(t, e, `append stocks (symbol = "DEC", day = "1993-01-04", price = 33.0)`)
	res := mustExec(t, e, `retrieve (stocks.symbol, stocks.price) where stocks.symbol = "IBM"`)
	if len(res.Rows) != 2 || res.Cols[0] != "symbol" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, e, `retrieve (stocks.price) where stocks.day = date("Jan 5, 1993")`)
	if len(res.Rows) != 1 || res.Rows[0][0].F != 51.5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Rendered table output.
	txt := res.String()
	if !strings.Contains(txt, "price") || !strings.Contains(txt, "51.5") {
		t.Errorf("rendered result:\n%s", txt)
	}
}

// The paper's flagship query: "Retrieve (stock.price) on expiration-date"
// where expiration-date is "the 3rd Friday of the month if it is a business
// day, else the preceding business day".
func TestRetrieveOnExpirationDate(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create stocks (symbol text, day date, price float)`)
	// Populate daily prices for January 1993.
	for day := 1; day <= 31; day++ {
		src := `append stocks (symbol = "IBM", day = "1993-01-` + pad2(day) + `", price = ` + itoa(1000+day) + `.0)`
		mustExec(t, e, src)
	}
	// Third Fridays: selection [5] gives Fridays, [3] the third one per
	// month; January 1993's is Jan 15.
	mustExec(t, e, `define calendar ThirdFridays as "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS" granularity days`)
	res := mustExec(t, e, `retrieve (stocks.day, stocks.price) on ThirdFridays`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].D != (chronology.Civil{Year: 1993, Month: 1, Day: 15}) {
		t.Errorf("expiration day = %v, want 1993-01-15", res.Rows[0][0])
	}
	if res.Rows[0][1].F != 1015.0 {
		t.Errorf("price = %v", res.Rows[0][1])
	}
	// Quoted inline calendar expression works too.
	res = mustExec(t, e, `retrieve (stocks.day) on "[2]/DAYS:during:WEEKS" using day`)
	for _, row := range res.Rows {
		if row[0].D.Weekday() != chronology.Tuesday {
			t.Errorf("on-clause let through %v (%v)", row[0].D, row[0].D.Weekday())
		}
	}
	if len(res.Rows) != 4 {
		t.Errorf("Tuesdays in data = %d rows", len(res.Rows))
	}
}

func pad2(d int) string {
	if d < 10 {
		return "0" + string(rune('0'+d))
	}
	return string(rune('0'+d/10)) + string(rune('0'+d%10))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// The university query of §1: foreign students who worked more than 20
// hours in any week during the semester. The semester is an application-
// specific stored calendar.
func TestUniversityQuery(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create work (student text, foreign_student bool, week_start date, hours int)`)
	rows := []string{
		`append work (student = "ana",  foreign_student = true,  week_start = "1993-01-04", hours = 25)`,
		`append work (student = "ana",  foreign_student = true,  week_start = "1993-06-14", hours = 30)`, // outside semester
		`append work (student = "bob",  foreign_student = false, week_start = "1993-01-11", hours = 40)`, // not foreign
		`append work (student = "chen", foreign_student = true,  week_start = "1993-01-18", hours = 12)`, // under 20
		`append work (student = "dee",  foreign_student = true,  week_start = "1993-02-01", hours = 21)`,
	}
	for _, r := range rows {
		mustExec(t, e, r)
	}
	// Spring semester 1993: Jan 4 .. May 14 in day ticks (2196..2326).
	mustExec(t, e, `define calendar Semester as "DAYS:during:interval(2196, 2326)" granularity days`)
	res := mustExec(t, e, `retrieve (work.student)
		where work.foreign_student = true and work.hours > 20 and incal(work.week_start, Semester)`)
	var got []string
	for _, row := range res.Rows {
		got = append(got, row[0].S)
	}
	if strings.Join(got, ",") != "ana,dee" {
		t.Errorf("students = %v, want ana,dee", got)
	}
}

func TestAggregates(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create obs (day date, v float)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, e, `append obs (day = "1993-01-`+pad2(i)+`", v = `+itoa(i)+`.0)`)
	}
	res := mustExec(t, e, `retrieve (count(obs.v), sum(obs.v), avg(obs.v), min(obs.v), max(obs.v))`)
	row := res.Rows[0]
	if row[0].I != 10 || row[1].F != 55 || row[2].F != 5.5 || row[3].F != 1 || row[4].F != 10 {
		t.Errorf("aggregates = %v", row)
	}
	if _, err := e.ExecOne(`retrieve (count(obs.v), obs.v)`); err == nil {
		t.Error("mixed aggregate and plain targets should fail")
	}
}

func TestReplaceAndDelete(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create s (k text, v int)`)
	mustExec(t, e, `append s (k = "a", v = 1)`)
	mustExec(t, e, `append s (k = "b", v = 2)`)
	res := mustExec(t, e, `replace s (v = s.v * 10) where s.k = "a"`)
	if res.Msg != "replaced 1 tuples" {
		t.Errorf("msg = %q", res.Msg)
	}
	res = mustExec(t, e, `retrieve (s.v) where s.k = "a"`)
	if res.Rows[0][0].I != 10 {
		t.Errorf("v = %v", res.Rows[0][0])
	}
	mustExec(t, e, `delete s where s.v = 2`)
	res = mustExec(t, e, `retrieve (count(s.v))`)
	if res.Rows[0][0].I != 1 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestEventRuleThroughPostquel(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create trades (sym text, px float)`)
	mustExec(t, e, `create audit (sym text, px float)`)
	mustExec(t, e, `define rule big on append to trades where NEW.px > 100.0
		do ( append audit (sym = NEW.sym, px = NEW.px) )`)
	mustExec(t, e, `append trades (sym = "IBM", px = 50.0)`)
	mustExec(t, e, `append trades (sym = "AAPL", px = 150.0)`)
	res := mustExec(t, e, `retrieve (audit.sym, audit.px)`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "AAPL" {
		t.Errorf("audit rows = %v", res.Rows)
	}
	// RULE-INFO knows it.
	res = mustExec(t, e, `show rule big`)
	if !strings.Contains(res.Msg, "append on trades") {
		t.Errorf("show rule:\n%s", res.Msg)
	}
}

func TestTemporalRuleThroughPostquel(t *testing.T) {
	e, clock := newEngine(t)
	mustExec(t, e, `create alerts (msg text)`)
	mustExec(t, e, `define temporal rule tuesday_alert on "[2]/DAYS:during:WEEKS"
		do ( append alerts (msg = "it is tuesday") )`)
	cron, err := rules.NewDBCron(e.Rules(), chronology.SecondsPerDay, clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 14; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(chronology.SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, e, `retrieve (count(alerts.msg))`)
	if res.Rows[0][0].I != 2 { // Jan 5 and Jan 12 1993
		t.Errorf("alerts = %v", res.Rows[0][0])
	}
}

func TestShowAndDrop(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create s (k text)`)
	mustExec(t, e, `define calendar Mondays as "[1]/DAYS:during:WEEKS"`)
	res := mustExec(t, e, `show calendars`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Mondays" {
		t.Errorf("calendars = %v", res.Rows)
	}
	res = mustExec(t, e, `show calendar Mondays`)
	if !strings.Contains(res.Msg, "Derivation-Script") {
		t.Errorf("figure row:\n%s", res.Msg)
	}
	res = mustExec(t, e, `show tables`)
	found := false
	for _, r := range res.Rows {
		if r[0].S == "s" {
			found = true
		}
	}
	if !found {
		t.Errorf("tables = %v", res.Rows)
	}
	mustExec(t, e, `drop calendar Mondays`)
	res = mustExec(t, e, `show calendars`)
	if len(res.Rows) != 0 {
		t.Errorf("calendars after drop = %v", res.Rows)
	}
	mustExec(t, e, `drop table s`)
	if _, err := e.ExecOne(`retrieve (s.k)`); err == nil {
		t.Error("dropped table should be gone")
	}
}

func TestScalarFunctions(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create t (d date)`)
	mustExec(t, e, `append t (d = "1993-01-05")`)
	res := mustExec(t, e, `retrieve (year(t.d), month(t.d), day(t.d), weekday(t.d), daytick(t.d))`)
	row := res.Rows[0]
	if row[0].I != 1993 || row[1].I != 1 || row[2].I != 5 || row[3].I != 2 || row[4].I != 2197 {
		t.Errorf("date parts = %v", row)
	}
	res = mustExec(t, e, `retrieve (t.d + 30, t.d - 5, t.d - t.d)`)
	row = res.Rows[0]
	if row[0].D != (chronology.Civil{Year: 1993, Month: 2, Day: 4}) || row[2].I != 0 {
		t.Errorf("date arithmetic = %v", row)
	}
	res = mustExec(t, e, `retrieve (now() - t.d) from t`)
	if res.Rows[0][0].I != -4 { // clock is Jan 1, row is Jan 5
		t.Errorf("now() diff = %v", res.Rows[0][0])
	}
	// User-defined function through the store registry.
	e.DB().RegisterFunc(store.UserFunc{Name: "twice", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []store.Value) (store.Value, error) { return store.NewInt(args[0].I * 2), nil }})
	res = mustExec(t, e, `retrieve (twice(day(t.d))) from t`)
	if res.Rows[0][0].I != 10 {
		t.Errorf("twice = %v", res.Rows[0][0])
	}
}

func TestParseAndExecErrors(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create s (k text, v int, d date)`)
	mustExec(t, e, `append s (k = "seed", v = 7, d = "1993-01-03")`)
	bad := []string{
		``,
		`frobnicate s`,
		`create s (k text)`,                          // duplicate table
		`append nope (k = "x")`,                      // missing table
		`append s (nope = 1)`,                        // missing column
		`retrieve (nope.k)`,                          // missing table
		`retrieve (s.nope)`,                          // missing column
		`retrieve (v)`,                               // no table inference possible
		`retrieve (s.v) on "][ bad"`,                 // bad calendar expression
		`retrieve (s.v) where s.v`,                   // non-boolean where
		`retrieve (s.v) where s.k + 1 = 2`,           // text arithmetic with int
		`retrieve (s.v / 0) from s`,                  // parse ok; runtime div zero needs rows
		`delete nope`,                                // missing table
		`define calendar X as "]["`,                  // bad script
		`define rule r on frob to s do ( delete s )`, // bad event
		`show frobs`,
		`drop frob x`,
		`append s (k = "unterminated`,
	}
	for _, src := range bad {
		if src == `retrieve (s.v / 0) from s` {
			continue // no rows: nothing evaluates
		}
		if _, err := e.ExecOne(src); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
	// Division by zero with a row present.
	mustExec(t, e, `append s (k = "a", v = 1, d = "1993-01-01")`)
	if _, err := e.ExecOne(`retrieve (s.v / 0) from s`); err == nil {
		t.Error("division by zero should fail")
	}
	// DDL inside rule actions is rejected at execution.
	mustExec(t, e, `define rule bad_ddl on append to s do ( drop table s )`)
	if _, err := e.ExecOne(`append s (k = "b", v = 2, d = "1993-01-02")`); err == nil {
		t.Error("DDL inside a rule action should fail")
	}
}

func TestBooleanLogic(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create s (k text, v int)`)
	mustExec(t, e, `append s (k = "a", v = 1)`)
	mustExec(t, e, `append s (k = "b", v = 2)`)
	mustExec(t, e, `append s (k = "c", v = 3)`)
	res := mustExec(t, e, `retrieve (s.k) where s.v >= 2 and not (s.k = "c")`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "b" {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, e, `retrieve (s.k) where s.v = 1 or s.v = 3`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, e, `retrieve (s.k) where true and not false`)
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(1994)) }

// The Postquel parser must never panic on arbitrary input.
func TestPostquelParserNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	rng := newDeterministicRand()
	alphabet := []byte(`abz019().,="'<>!+-*/ retrieve append create define rule on where do incal`)
	for i := 0; i < 3000; i++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		_, _ = parse(string(buf))
	}
	seeds := []string{
		`retrieve (s.k, s.v) on Tuesdays using day where s.v > 2 and incal(s.d, Semester)`,
		`define temporal rule r on "[2]/DAYS:during:WEEKS" do ( append a (m = "x") )`,
		`create t (a int, b date, c calendar)`,
	}
	for _, seed := range seeds {
		for i := 0; i < 1000; i++ {
			b := []byte(seed)
			for k := 0; k < rng.Intn(3)+1; k++ {
				if len(b) > 1 {
					p := rng.Intn(len(b))
					b[p] = alphabet[rng.Intn(len(alphabet))]
				}
			}
			_, _ = parse(string(b))
		}
	}
}

func TestStoredCalendarAndDropThroughPostquel(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `define stored calendar HOLIDAYS values (31, 90, -3) granularity days`)
	res := mustExec(t, e, `show calendar HOLIDAYS`)
	if !strings.Contains(res.Msg, "(-3,-3)") || !strings.Contains(res.Msg, "(90,90)") {
		t.Errorf("stored calendar row:\n%s", res.Msg)
	}
	// incal against the stored calendar with an integer tick argument.
	mustExec(t, e, `create s (d date, n int)`)
	mustExec(t, e, `append s (d = "1987-01-31", n = 31)`)
	mustExec(t, e, `append s (d = "1987-02-01", n = 32)`)
	res = mustExec(t, e, `retrieve (s.n) where incal(s.n, HOLIDAYS)`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 31 {
		t.Errorf("incal by tick = %v", res.Rows)
	}
	res = mustExec(t, e, `retrieve (s.n) where incal(s.d, HOLIDAYS)`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 31 {
		t.Errorf("incal by date = %v", res.Rows)
	}
	mustExec(t, e, `drop calendar HOLIDAYS`)
	if _, err := e.ExecOne(`show calendar HOLIDAYS`); err == nil {
		t.Error("dropped calendar should be gone")
	}
	// Stored calendar parse errors.
	for _, bad := range []string{
		`define stored calendar X values ()`,
		`define stored calendar X values (1, "a")`,
		`define stored calendar X values (0)`,
		`define stored calendar X values (1) granularity frobs`,
		`define calendar Y as "DAYS" granularity frobs`,
		`define frob Z as "DAYS"`,
		`drop rule missing_rule`,
		`drop table missing_table`,
	} {
		if _, err := e.ExecOne(bad); err == nil {
			t.Errorf("Exec(%q) should fail", bad)
		}
	}
}

func TestDateTextComparisonNormalization(t *testing.T) {
	e, _ := newEngine(t)
	mustExec(t, e, `create s (d date)`)
	mustExec(t, e, `append s (d = "1993-03-15")`)
	// Text literal on either side of a date comparison coerces to date.
	res := mustExec(t, e, `retrieve (s.d) where s.d >= "1993-03-01" and "1993-04-01" > s.d`)
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := e.ExecOne(`retrieve (s.d) where s.d = "not a date"`); err == nil {
		t.Error("bad date text should fail during comparison")
	}
	// Text concatenation and negative numbers.
	res = mustExec(t, e, `retrieve ("a" + "b", -3, 2 * -2) from s`)
	if res.Rows[0][0].S != "ab" || res.Rows[0][1].I != -3 || res.Rows[0][2].I != -4 {
		t.Errorf("exprs = %v", res.Rows[0])
	}
}

func TestEngineAccessorsAndSetClock(t *testing.T) {
	e, _ := newEngine(t)
	if e.Cal() == nil || e.DB() == nil || e.Rules() == nil {
		t.Error("nil accessor")
	}
	clock2 := rules.NewVirtualClock(12345)
	e.SetClock(clock2)
	mustExec(t, e, `create s (k int)`)
	mustExec(t, e, `append s (k = 1)`)
	res := mustExec(t, e, `retrieve (now()) from s`)
	if res.Rows[0][0].D != (chronology.Civil{Year: 1987, Month: 1, Day: 1}) {
		t.Errorf("now() under replaced clock = %v", res.Rows[0][0])
	}
}
