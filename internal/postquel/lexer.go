// Package postquel implements a Postquel-flavored query language over the
// store, with the paper's calendar extensions: calendar expressions in
// retrieve ... on clauses, calendar membership predicates in where clauses,
// and define statements for calendars and (temporal) rules. It is the
// query-language face of the system, standing in for the POSTGRES Postquel
// of the paper.
package postquel

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tName
	tInt
	tFloat
	tString
	tPunct // ( ) , = < > <= >= != + - * / .
)

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	off  int // byte offset in source (for raw slicing of calendar exprs)
	end  int
}

type lexer struct {
	src  string
	toks []token
}

func lex(src string) (*lexer, error) {
	lx := &lexer{src: src}
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case isNameStart(c):
			j := i + 1
			for j < n && isNamePart(src[j]) {
				j++
			}
			lx.toks = append(lx.toks, token{kind: tName, text: src[i:j], off: i, end: j})
			i = j
		case c >= '0' && c <= '9':
			j := i
			dots := 0
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					// A dot followed by a non-digit ends the number (column
					// qualification never follows a number).
					if j+1 >= n || src[j+1] < '0' || src[j+1] > '9' {
						break
					}
					dots++
				}
				j++
			}
			text := src[i:j]
			if dots > 1 {
				return nil, fmt.Errorf("postquel: malformed number %q", text)
			}
			if dots == 1 {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("postquel: bad float %q", text)
				}
				lx.toks = append(lx.toks, token{kind: tFloat, text: text, f: f, off: i, end: j})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("postquel: bad integer %q", text)
				}
				lx.toks = append(lx.toks, token{kind: tInt, text: text, i: v, off: i, end: j})
			}
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("postquel: unterminated string")
				}
				if src[j] == quote {
					break
				}
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			lx.toks = append(lx.toks, token{kind: tString, text: sb.String(), off: i, end: j + 1})
			i = j + 1
		case strings.IndexByte("(),=+-*/.", c) >= 0:
			lx.toks = append(lx.toks, token{kind: tPunct, text: string(c), off: i, end: i + 1})
			i++
		case c == '<' || c == '>' || c == '!':
			text := string(c)
			j := i + 1
			if j < n && src[j] == '=' {
				text += "="
				j++
			}
			if text == "!" {
				return nil, fmt.Errorf("postquel: unexpected '!'")
			}
			lx.toks = append(lx.toks, token{kind: tPunct, text: text, off: i, end: j})
			i = j
		default:
			return nil, fmt.Errorf("postquel: unexpected character %q", string(c))
		}
	}
	lx.toks = append(lx.toks, token{kind: tEOF, off: n, end: n})
	return lx, nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNamePart(c byte) bool { return isNameStart(c) || (c >= '0' && c <= '9') }
