package calsys

import (
	"strings"
	"testing"
)

// Snapshot round trip through the public API: tables, the CALENDARS catalog
// and rule catalogs all survive; rule actions are orphaned until redefined.
func TestSnapshotRoundTripSystem(t *testing.T) {
	clock := NewVirtualClock(0)
	sys := MustOpen(WithClock(clock))
	clock.Set(sys.SecondsOf(MustDate(1993, 1, 1)))

	if _, err := sys.Exec(`create stocks (sym text, day date, price float)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`append stocks (sym = "IBM", day = "1993-01-05", price = 50.0)`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS", GranAuto); err != nil {
		t.Fatal(err)
	}
	hol, err := PointCalendar(Day, 2223)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineStoredCalendar("HOLIDAYS", hol); err != nil {
		t.Fatal(err)
	}
	if err := sys.OnCalendar("tue", "Tuesdays", func(tx *Txn, at int64) error { return nil }); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := sys.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	clock2 := NewVirtualClock(0)
	restored, err := OpenSnapshot(strings.NewReader(buf.String()), WithClock(clock2))
	if err != nil {
		t.Fatal(err)
	}
	clock2.Set(restored.SecondsOf(MustDate(1993, 1, 1)))

	// Data survives.
	res, err := restored.ExecOne(`retrieve (stocks.price) where stocks.sym = "IBM"`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].F != 50 {
		t.Fatalf("restored query: %v, %v", res.Rows, err)
	}
	// Calendars survive, both derived and stored.
	cal, err := restored.EvalCalendar("Tuesdays", MustDate(1993, 1, 1), MustDate(1993, 1, 31))
	if err != nil || cal.Flatten().Len() != 5 {
		t.Fatalf("restored Tuesdays: %v, %v", cal, err)
	}
	stored, ok := restored.CalendarEntryOf("HOLIDAYS")
	if !ok || stored.Values == nil || stored.Values.String() != "{(2223,2223)}" {
		t.Fatalf("restored HOLIDAYS: %+v", stored)
	}
	// The rule is orphaned: present in RULE-INFO, action detached.
	orphans := restored.OrphanedRules()
	if len(orphans) != 1 || orphans[0] != "tue" {
		t.Fatalf("orphans = %v", orphans)
	}
	// Reattaching by redefinition works and the rule fires again.
	fired := 0
	if err := restored.OnCalendar("tue", "Tuesdays", func(tx *Txn, at int64) error {
		fired++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(restored.OrphanedRules()) != 0 {
		t.Error("orphan not cleared after reattachment")
	}
	cron, err := restored.StartDBCron(SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := cron.AdvanceTo(clock2.Advance(SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 1 {
		t.Errorf("reattached rule fired %d times in a week, want 1", fired)
	}
	// Exactly one catalog row for the rule (reattachment replaced, not
	// duplicated).
	info, err := restored.ExecOne(`show rules`)
	if err != nil || len(info.Rows) != 1 {
		t.Errorf("rules after reattach = %v, %v", info.Rows, err)
	}
}

func TestOpenSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot should fail")
	}
}
