package calsys

import (
	"strings"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	s, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.Chron().Epoch() != DefaultEpoch {
		t.Errorf("epoch = %v", s.Chron().Epoch())
	}
	if s.Today() != DefaultEpoch {
		t.Errorf("today = %v", s.Today())
	}
	if _, err := Open(WithEpoch(Civil{Year: 1993, Month: 2, Day: 30})); err == nil {
		t.Error("invalid epoch should fail")
	}
}

func TestDateHelpers(t *testing.T) {
	if _, err := Date(1993, 2, 30); err == nil {
		t.Error("invalid date should fail")
	}
	d := MustDate(1993, 1, 5)
	if d.Weekday() != Tuesday {
		t.Errorf("weekday = %v", d.Weekday())
	}
	s := MustOpen()
	if s.DayTickOf(d) != 2197 {
		t.Errorf("day tick = %d", s.DayTickOf(d))
	}
	if s.CivilOfDayTick(2197) != d {
		t.Error("round trip")
	}
	if s.SecondsOf(MustDate(1987, 1, 2)) != SecondsPerDay {
		t.Error("SecondsOf")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDate should panic on bad date")
		}
	}()
	MustDate(1993, 2, 30)
}

// End to end through the public API: the Figure 1 calendar, the paper's
// parse trees, and a temporal rule driven by DBCRON.
func TestEndToEndPaperScenario(t *testing.T) {
	clock := NewVirtualClock(0)
	s := MustOpen(WithClock(clock))
	clock.Set(s.SecondsOf(MustDate(1993, 1, 1)))

	// Figure 1: Tuesdays.
	if err := s.DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS", GranAuto); err != nil {
		t.Fatal(err)
	}
	row, err := s.CalendarFigureRow("Tuesdays")
	if err != nil || !strings.Contains(row, "Tuesdays") {
		t.Fatalf("figure row: %v\n%s", err, row)
	}
	cal, err := s.EvalCalendar("Tuesdays", MustDate(1993, 1, 1), MustDate(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Flatten().Len() != 5 {
		t.Errorf("Tuesdays = %v", cal)
	}

	// Figures 2-3: parse trees shrink under factorization.
	if err := s.DefineCalendar("Mondays", "[1]/DAYS:during:WEEKS", GranAuto); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineCalendar("Januarys", "[1]/MONTHS:during:YEARS", GranAuto); err != nil {
		t.Fatal(err)
	}
	initial, factored, err := s.ParseTree("Mondays:during:Januarys:during:1993/YEARS")
	if err != nil {
		t.Fatal(err)
	}
	if len(factored) >= len(initial) {
		t.Errorf("factorized tree not smaller:\n%s\nvs\n%s", factored, initial)
	}

	// Temporal rule via the Go API and DBCRON under virtual time.
	fired := 0
	if err := s.OnCalendar("tuesday_proc", "Tuesdays", func(tx *Txn, at int64) error {
		fired++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	cron, err := s.StartDBCron(SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 14; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(SecondsPerDay)); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 2 {
		t.Errorf("rule fired %d times in two weeks, want 2", fired)
	}
	if err := s.DropRule("tuesday_proc"); err != nil {
		t.Fatal(err)
	}
}

func TestQueryThroughFacade(t *testing.T) {
	s := MustOpen()
	if _, err := s.Exec(`create stocks (sym text, day date, price float)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`append stocks (sym = "IBM", day = "1993-01-15", price = 50.0)
		append stocks (sym = "IBM", day = "1993-01-16", price = 51.0)`); err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecOne(`retrieve (stocks.price) where stocks.day = "1993-01-16"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 51 {
		t.Errorf("rows = %v", res.Rows)
	}
	// The registered 30/360 function is available in queries.
	res, err = s.ExecOne(`retrieve (days("30/360", "1993-01-01", "1994-01-01")) from stocks where stocks.price = 50.0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 360 {
		t.Errorf("days = %v", res.Rows[0][0])
	}
}

func TestEventRuleThroughFacade(t *testing.T) {
	s := MustOpen()
	if _, err := s.Exec(`create trades (sym text, px float)`); err != nil {
		t.Fatal(err)
	}
	var seen []string
	err := s.OnEvent("watch", EvAppend, "trades",
		func(tx *Txn, ev Event) (bool, error) { return ev.New[1].F > 100, nil },
		func(tx *Txn, ev *Event) error {
			seen = append(seen, ev.New[0].S)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`append trades (sym = "A", px = 50.0)
		append trades (sym = "B", px = 200.0)`); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "B" {
		t.Errorf("seen = %v", seen)
	}
}

func TestCalendarScriptAndSeriesThroughFacade(t *testing.T) {
	s := MustOpen()
	hol, err := PointCalendar(Day, 31, 90)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DefineStoredCalendar("HOLIDAYS", hol); err != nil {
		t.Fatal(err)
	}
	v, err := s.RunCalendarScript(`{LDOM = [n]/DAYS:during:MONTHS;
		return (LDOM - HOLIDAYS);}`, MustDate(1987, 1, 1), MustDate(1987, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if v.IsString() || v.Cal.Len() != 3 { // Jan 31 (holiday) dropped; Feb, Mar? 90 = Mar 31 dropped too
		// month ends 31, 59, 90, 120 minus {31,90} = {59, 120}
	}
	if v.Cal.String() != "{(59,59),(120,120)}" {
		t.Errorf("script result = %v", v.Cal)
	}

	gnp, err := s.NewRegularSeries("GNP", "[n]/DAYS:during:caloperate(MONTHS, 3)", MustDate(1987, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	gnp.Append(4500, 4520)
	obs, err := gnp.Observations()
	if err != nil || len(obs) != 2 {
		t.Fatalf("obs = %v, %v", obs, err)
	}
	if s.CivilOfDayTick(obs[0].Span.Lo) != MustDate(1987, 3, 31) {
		t.Errorf("first quarter end = %v", s.CivilOfDayTick(obs[0].Span.Lo))
	}
}

func TestCompileCalendarExposesPlan(t *testing.T) {
	s := MustOpen()
	p, err := s.CompileCalendar("[2]/DAYS:during:WEEKS", MustDate(1993, 1, 1), MustDate(1993, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "GENERATE WEEKS") {
		t.Errorf("plan:\n%s", p)
	}
	if p.GenerateCost() <= 0 {
		t.Error("plan cost should be positive")
	}
	if _, err := s.CompileCalendar("][", MustDate(1993, 1, 1), MustDate(1993, 1, 2)); err == nil {
		t.Error("bad expression should fail")
	}
}

func TestBondFacade(t *testing.T) {
	b := Bond{
		Issue: MustDate(1993, 1, 15), Maturity: MustDate(1998, 1, 15),
		Coupon: 0.08, Face: 100, Frequency: 2, Basis: Thirty360,
	}
	ai, err := b.AccruedInterest(MustDate(1993, 3, 1))
	if err != nil || ai <= 0 {
		t.Errorf("accrued = %v, %v", ai, err)
	}
	conv, err := DayCountByName("30/360")
	if err != nil || conv.Name() != "30/360" {
		t.Errorf("by name: %v", err)
	}
}

func TestFacadeAccessors(t *testing.T) {
	s := MustOpen()
	if s.DB() == nil || s.Rules() == nil || s.Query() == nil || s.Clock() == nil {
		t.Error("nil accessor")
	}
	if s.Now() != 0 {
		t.Errorf("Now = %d", s.Now())
	}
	hol, _ := PointCalendar(Day, 5)
	if err := s.DefineStoredCalendar("H", hol); err != nil {
		t.Fatal(err)
	}
	hol2, _ := PointCalendar(Day, 5, 9)
	if err := s.ReplaceStoredCalendar("H", hol2); err != nil {
		t.Fatal(err)
	}
	e, ok := s.CalendarEntryOf("H")
	if !ok || e.Values.Len() != 2 {
		t.Errorf("replaced entry = %+v", e)
	}
	if err := s.DropCalendar("H"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CalendarEntryOf("H"); ok {
		t.Error("dropped calendar still present")
	}
}

func TestFacadeWindowCosts(t *testing.T) {
	s := MustOpen()
	if err := s.DefineCalendar("Mondays", "[1]/DAYS:during:WEEKS", GranAuto); err != nil {
		t.Fatal(err)
	}
	on, off, err := s.WindowCosts("Mondays:during:1993/YEARS", MustDate(1987, 1, 1), MustDate(2000, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if on >= off {
		t.Errorf("windowed cost %d should be below unwindowed %d", on, off)
	}
	if _, _, err := s.WindowCosts("][", MustDate(1987, 1, 1), MustDate(1988, 1, 1)); err == nil {
		t.Error("bad expression should fail")
	}
}

func TestFacadeScriptWithWait(t *testing.T) {
	clock := NewVirtualClock(0)
	s := MustOpen(WithClock(clock))
	clock.Set(s.SecondsOf(MustDate(1993, 1, 1)))
	waits := 0
	v, err := s.RunCalendarScriptWithWait(
		`{while (today:<:interval(2196, 2196, DAYS)) ; return ("GO");}`,
		MustDate(1993, 1, 1), MustDate(1993, 1, 31),
		func() error {
			waits++
			clock.Advance(SecondsPerDay)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsString() || v.Str != "GO" || waits == 0 {
		t.Errorf("v=%v waits=%d", v, waits)
	}
	if _, err := s.RunCalendarScriptWithWait("{oops", MustDate(1993, 1, 1), MustDate(1993, 1, 2), nil); err == nil {
		t.Error("parse error should surface")
	}
}
