// Bondyield: the user-defined date-arithmetic motivation of §1 — "the yield
// calculation on financial bonds uses a calendar that has 30 days in every
// month for date arithmetic" — comparing accrued interest and yields across
// day-count conventions, and calling the registered date functions from
// Postquel queries.
package main

import (
	"fmt"
	"log"

	"calsys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := calsys.Open()
	if err != nil {
		return err
	}

	bondFor := func(basis calsys.DayCount) calsys.Bond {
		return calsys.Bond{
			Issue:    calsys.MustDate(1993, 1, 15),
			Maturity: calsys.MustDate(1998, 1, 15),
			Coupon:   0.08, Face: 100, Frequency: 2, Basis: basis,
		}
	}
	settle := calsys.MustDate(1993, 3, 1)
	marketPrice := 103.25

	fmt.Println("== 8% 5y bond, settle 1993-03-01, price 103.25 ==")
	fmt.Printf("%-14s %18s %12s\n", "convention", "accrued interest", "yield")
	for _, basis := range []calsys.DayCount{
		calsys.Thirty360, calsys.Thirty360European, calsys.ActualActual,
		calsys.Actual365, calsys.Actual360,
	} {
		b := bondFor(basis)
		ai, err := b.AccruedInterest(settle)
		if err != nil {
			return err
		}
		y, err := b.Yield(settle, marketPrice)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %18.6f %11.4f%%\n", basis.Name(), ai, y*100)
	}

	// The same day-count arithmetic is reachable from the query language,
	// because the functions were registered with the extensible store.
	if _, err := sys.Exec(`create bonds (id text, issued date, matures date)`); err != nil {
		return err
	}
	if _, err := sys.Exec(`append bonds (id = "LBL-93", issued = "1993-01-15", matures = "1998-01-15")`); err != nil {
		return err
	}
	res, err := sys.ExecOne(`retrieve (
		bonds.id,
		days("30/360", bonds.issued, bonds.matures) as d360,
		days("actual/365", bonds.issued, bonds.matures) as dact,
		yearfrac("30/360", bonds.issued, bonds.matures) as y360)`)
	if err != nil {
		return err
	}
	fmt.Println("\n== the registered date functions, from Postquel ==")
	fmt.Println(res.String())

	// Coupon schedule generated with end-of-month-safe month stepping.
	sched, err := calsys.CouponSchedule(calsys.MustDate(1993, 1, 31), calsys.MustDate(1994, 1, 31), 2)
	if err != nil {
		return err
	}
	fmt.Println("\n== coupon schedule for a Jan-31 bond (note the Jul-31 / Jan-31 dates) ==")
	for _, c := range sched {
		fmt.Printf("  %s\n", c)
	}
	return nil
}
