// Finance: the paper's option workflows end to end — the expiration-date
// script ("3rd Friday of the expiration month if a business day, else the
// preceding business day", §1 and §3.3), the last-trading-day wait loop, the
// EMP-DAYS announcement calendar, and "Retrieve (stock.price) on
// expiration-date" over a synthetic price table.
package main

import (
	"fmt"
	"log"

	"calsys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		return err
	}
	ch := sys.Chron()
	clock.Set(sys.SecondsOf(calsys.MustDate(1993, 1, 1)))

	// US-style holiday list for 1993 (New Year's Day observed Jan 1,
	// Washington's birthday Feb 15, Good Friday Apr 9), as day ticks.
	holidays := []calsys.Civil{
		calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 2, 15), calsys.MustDate(1993, 4, 9),
	}
	var holTicks []calsys.Tick
	for _, h := range holidays {
		holTicks = append(holTicks, sys.DayTickOf(h))
	}
	hol, err := calsys.PointCalendar(calsys.Day, holTicks...)
	if err != nil {
		return err
	}
	if err := sys.DefineStoredCalendar("HOLIDAYS", hol); err != nil {
		return err
	}
	// American business days: weekdays minus holidays (the paper's
	// AM_BUS_DAYS), as a multi-statement derivation.
	if err := sys.DefineCalendar("AM_BUS_DAYS",
		`{WD = [1,2,3,4,5]/DAYS:during:WEEKS; return (WD - HOLIDAYS);}`, calsys.Day); err != nil {
		return err
	}

	// --- expiration dates -----------------------------------------------
	// §3.3's if-script, generalized over every month of 1993 by computing
	// third Fridays first.
	if err := sys.DefineCalendar("ThirdFridays",
		"[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS", calsys.Day); err != nil {
		return err
	}
	expiry, err := sys.RunCalendarScript(`{
		temp1 = ThirdFridays:intersects:(DAYS:during:MONTHS);
		hols = temp1:intersects:HOLIDAYS;
		good = temp1 - hols;
		subst = [n]/AM_BUS_DAYS:<:hols;
		return (good + subst);
	}`, calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 6, 30))
	if err != nil {
		return err
	}
	fmt.Println("== option expiration dates, Jan-Jun 1993 ==")
	for _, iv := range expiry.Cal.Flatten().Intervals() {
		d := ch.CivilOfDayTick(iv.Lo)
		fmt.Printf("  %s (%s)\n", d, d.Weekday())
	}

	// --- last trading day (§3.3's while-script, the scheduling part) ------
	// The 7th business day preceding the last business day of the January
	// expiration month.
	alert, err := sys.RunCalendarScript(`{
		temp1 = [n]/AM_BUS_DAYS:during:interval(2193, 2223);
		temp2 = [-7]/AM_BUS_DAYS:<:temp1;
		return (temp2);
	}`, calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 1, 31))
	if err != nil {
		return err
	}
	lastTrading := ch.CivilOfDayTick(alert.Cal.Intervals()[0].Lo)
	fmt.Printf("\n== last trading day for January 1993 expiry: %s (%s) ==\n", lastTrading, lastTrading.Weekday())

	// --- EMP-DAYS (§3.3's assignment script) ------------------------------
	emp, err := sys.RunCalendarScript(`{
		LDOM = [n]/DAYS:during:MONTHS;
		LDOM_HOL = LDOM:intersects:HOLIDAYS;
		LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
		return (LDOM - LDOM_HOL + LAST_BUS_DAY);
	}`, calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 6, 30))
	if err != nil {
		return err
	}
	fmt.Println("\n== employment-figure announcement days (EMP-DAYS) ==")
	for _, iv := range emp.Cal.Flatten().Intervals() {
		fmt.Printf("  %s\n", ch.CivilOfDayTick(iv.Lo))
	}

	// --- retrieve (stock.price) on expiration-date ------------------------
	if _, err := sys.Exec(`create stock (sym text, day date, price float)`); err != nil {
		return err
	}
	// Synthetic daily closes for H1 1993 (deterministic walk).
	price := 100.0
	for d := calsys.MustDate(1993, 1, 1); d.Before(calsys.MustDate(1993, 7, 1)); d = d.AddDays(1) {
		price += float64((d.Day%5)-2) * 0.4
		stmt := fmt.Sprintf(`append stock (sym = "LBL", day = "%s", price = %.2f)`, d, price)
		if _, err := sys.Exec(stmt); err != nil {
			return err
		}
	}
	if err := sys.DefineCalendar("ExpirationDates",
		`{t = ThirdFridays:intersects:(DAYS:during:MONTHS);
		  h = t:intersects:HOLIDAYS;
		  return (t - h + ([n]/AM_BUS_DAYS:<:h));}`, calsys.Day); err != nil {
		return err
	}
	res, err := sys.ExecOne(`retrieve (stock.day, stock.price) on ExpirationDates`)
	if err != nil {
		return err
	}
	fmt.Println("\n== retrieve (stock.price) on expiration-date ==")
	fmt.Println(res.String())

	// --- a temporal rule alerting on expiration days ----------------------
	if _, err := sys.Exec(`create alerts (day date, msg text)`); err != nil {
		return err
	}
	if _, err := sys.Exec(`define temporal rule expiry_alert on ExpirationDates
		do ( append alerts (day = now(), msg = "options expire today") )`); err != nil {
		return err
	}
	cron, err := sys.StartDBCron(calsys.SecondsPerDay)
	if err != nil {
		return err
	}
	for i := 0; i < 181; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
			return err
		}
	}
	res, err = sys.ExecOne(`retrieve (alerts.day, alerts.msg)`)
	if err != nil {
		return err
	}
	fmt.Println("\n== expiration alerts fired by DBCRON over H1 1993 ==")
	fmt.Println(res.String())
	return nil
}
