// Quickstart: define the Figure 1 calendar (Tuesdays), evaluate the paper's
// §3.1 algebra examples, run a Postquel query with a calendar-valued on
// clause, and fire a temporal rule under DBCRON.
package main

import (
	"fmt"
	"log"

	"calsys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		return err
	}
	clock.Set(sys.SecondsOf(calsys.MustDate(1993, 1, 1)))

	// --- 1. The CALENDARS catalog (Figure 1) ---------------------------
	if err := sys.DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS", calsys.GranAuto); err != nil {
		return err
	}
	row, err := sys.CalendarFigureRow("Tuesdays")
	if err != nil {
		return err
	}
	fmt.Println("== CALENDARS catalog row (Figure 1) ==")
	fmt.Print(row)

	// --- 2. Calendar algebra (§3.1) -------------------------------------
	jan1, dec31 := calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 12, 31)
	weeksInJan, err := sys.EvalCalendar("WEEKS:during:interval(2193, 2223)", jan1, dec31)
	if err != nil {
		return err
	}
	fmt.Println("\n== weeks during January 1993 (day ticks from Jan 1 1987) ==")
	fmt.Println(weeksInJan)

	thirdWeeks, err := sys.EvalCalendar("[3]/WEEKS:overlaps:MONTHS", jan1, dec31)
	if err != nil {
		return err
	}
	fmt.Println("\n== third week of every month of 1993 ==")
	fmt.Println(thirdWeeks.Flatten())

	// --- 3. A query with a calendar on-clause ---------------------------
	if _, err := sys.Exec(`create readings (day date, level float)`); err != nil {
		return err
	}
	for d := 1; d <= 31; d++ {
		stmt := fmt.Sprintf(`append readings (day = "1993-01-%02d", level = %d.5)`, d, d)
		if _, err := sys.Exec(stmt); err != nil {
			return err
		}
	}
	res, err := sys.ExecOne(`retrieve (readings.day, readings.level) on Tuesdays`)
	if err != nil {
		return err
	}
	fmt.Println("\n== retrieve (readings.level) on Tuesdays ==")
	fmt.Println(res.String())

	// --- 4. A temporal rule under DBCRON (Figure 4) ---------------------
	fired := 0
	if err := sys.OnCalendar("tuesday_proc", "Tuesdays", func(tx *calsys.Txn, at int64) error {
		fired++
		fmt.Printf("rule fired on %s\n", sys.Chron().CivilOf(at))
		return nil
	}); err != nil {
		return err
	}
	cron, err := sys.StartDBCron(calsys.SecondsPerDay)
	if err != nil {
		return err
	}
	fmt.Println("\n== DBCRON: three weeks of virtual time ==")
	for i := 0; i < 21; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
			return err
		}
	}
	fmt.Printf("total firings: %d\n", fired)
	return nil
}
