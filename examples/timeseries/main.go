// Timeseries: the regular-series motivation of §1 — quarterly GNP stored
// without timestamps, valid time generated from the QUARTERS calendar on
// request — plus the future-work pattern query of §6: "Retrieve the time
// points at which the end-of-day closing prices for two successive days
// showed an increase".
package main

import (
	"fmt"
	"log"

	"calsys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := calsys.Open()
	if err != nil {
		return err
	}
	ch := sys.Chron()

	// --- quarterly GNP with generated valid time -------------------------
	gnp, err := sys.NewRegularSeries("GNP", "[n]/DAYS:during:caloperate(MONTHS, 3)",
		calsys.MustDate(1987, 1, 1))
	if err != nil {
		return err
	}
	// 1987-1992 US GNP, billions (approximate, for the demo).
	gnp.Append(
		4612, 4674, 4755, 4832, // 1987
		4916, 5002, 5080, 5180, // 1988
		5262, 5321, 5380, 5422, // 1989
		5501, 5560, 5601, 5595, // 1990
		5585, 5658, 5713, 5753, // 1991
		5841, 5903, 5958, 6044, // 1992
	)
	fmt.Println("== quarterly GNP: valid time generated, never stored ==")
	obs, err := gnp.Observations()
	if err != nil {
		return err
	}
	for _, o := range obs[:6] {
		fmt.Printf("  %s  %6.0f\n", ch.CivilOfDayTick(o.Span.Lo), o.Value)
	}
	fmt.Printf("  ... %d observations total\n", len(obs))

	v, ok, err := gnp.At(calsys.MustDate(1990, 12, 31))
	if err != nil {
		return err
	}
	fmt.Printf("GNP valid on 1990-12-31: %.0f (found=%v)\n", v, ok)

	// Aggregate quarterly GNP to annual means through a coarser calendar.
	annual, err := gnp.AggregateTo("YEARS", calsys.SeriesMean)
	if err != nil {
		return err
	}
	fmt.Println("\n== annual mean GNP (aggregated through the YEARS calendar) ==")
	for _, o := range annual {
		fmt.Printf("  %d  %7.1f\n", ch.CivilOfDayTick(o.Span.Lo).Year, o.Value)
	}

	// --- pattern selection over a daily closing-price series -------------
	closePx, err := sys.NewRegularSeries("CLOSE", "DAYS", calsys.MustDate(1993, 1, 4))
	if err != nil {
		return err
	}
	closePx.Append(50.00, 50.25, 50.10, 50.40, 50.90, 50.85, 50.70, 51.10, 51.50, 51.45)
	upDays, idx, err := closePx.SelectPattern(calsys.PatternTwoDayRise)
	if err != nil {
		return err
	}
	fmt.Println("\n== days starting two successive closing-price increases (§6 pattern) ==")
	for _, iv := range upDays.Intervals() {
		fmt.Printf("  %s\n", ch.CivilOfDayTick(iv.Lo))
	}
	fmt.Printf("window start indices: %v\n", idx)

	// The pattern result is itself a calendar: intersect it with Mondays.
	if err := sys.DefineCalendar("Mondays", "[1]/DAYS:during:WEEKS", calsys.GranAuto); err != nil {
		return err
	}
	mondays, err := sys.EvalCalendar("Mondays", calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 1, 31))
	if err != nil {
		return err
	}
	both, err := calsys.CalIntersect(upDays, mondays.Flatten())
	if err != nil {
		return err
	}
	fmt.Printf("rises that started on a Monday: %v\n", both)
	return nil
}
