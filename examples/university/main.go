// University: the administrator's query from §1 — "Retrieve the names of
// all foreign students who worked more than 20 hours in any week during the
// semester" — using an application-specific SEMESTER calendar, plus a
// consistency rule that rejects week records outside the semester.
package main

import (
	"fmt"
	"log"

	"calsys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := calsys.Open()
	if err != nil {
		return err
	}

	// Spring semester 1993 at this university: Jan 19 (the Tuesday after
	// MLK day) through May 14. These days change year to year — the point
	// of application-specific calendars.
	springLo := sys.DayTickOf(calsys.MustDate(1993, 1, 19))
	springHi := sys.DayTickOf(calsys.MustDate(1993, 5, 14))
	def := fmt.Sprintf(`define calendar Semester as "DAYS:during:interval(%d, %d)" granularity days`,
		springLo, springHi)
	if _, err := sys.Exec(def); err != nil {
		return err
	}
	// Weeks of the semester, as their own calendar.
	if _, err := sys.Exec(`define calendar SemesterWeeks as
		"WEEKS:overlaps:interval(` + fmt.Sprint(springLo) + `, ` + fmt.Sprint(springHi) + `, DAYS)"
		granularity weeks`); err != nil {
		return err
	}

	if _, err := sys.Exec(`create work (student text, foreign_student bool, week_start date, hours int)`); err != nil {
		return err
	}
	records := []string{
		`append work (student = "amara", foreign_student = true,  week_start = "1993-01-25", hours = 25)`,
		`append work (student = "amara", foreign_student = true,  week_start = "1993-02-01", hours = 18)`,
		`append work (student = "bo",    foreign_student = true,  week_start = "1993-03-08", hours = 22)`,
		`append work (student = "carol", foreign_student = false, week_start = "1993-02-08", hours = 40)`,
		`append work (student = "dmitri",foreign_student = true,  week_start = "1993-01-11", hours = 30)`, // before semester
		`append work (student = "elena", foreign_student = true,  week_start = "1993-04-12", hours = 19)`, // under the limit
	}
	for _, r := range records {
		if _, err := sys.Exec(r); err != nil {
			return err
		}
	}

	fmt.Println("== foreign students working > 20h in any week during the semester ==")
	res, err := sys.ExecOne(`retrieve (work.student, work.week_start, work.hours)
		where work.foreign_student = true and work.hours > 20
		  and incal(work.week_start, Semester)`)
	if err != nil {
		return err
	}
	fmt.Println(res.String())

	// A rule that audits out-of-semester records on arrival.
	if _, err := sys.Exec(`create anomalies (student text, week_start date)`); err != nil {
		return err
	}
	if _, err := sys.Exec(`define rule out_of_term on append to work
		where not incal(NEW.week_start, Semester)
		do ( append anomalies (student = NEW.student, week_start = NEW.week_start) )`); err != nil {
		return err
	}
	if _, err := sys.Exec(`append work (student = "felix", foreign_student = true, week_start = "1993-06-21", hours = 10)`); err != nil {
		return err
	}
	res, err = sys.ExecOne(`retrieve (anomalies.student, anomalies.week_start)`)
	if err != nil {
		return err
	}
	fmt.Println("\n== records filed outside the semester (caught by rule) ==")
	fmt.Println(res.String())

	// How many semester weeks are there? Evaluate the calendar directly.
	weeks, err := sys.EvalCalendar("SemesterWeeks", calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 12, 31))
	if err != nil {
		return err
	}
	fmt.Printf("\nsemester weeks: %d (first %v, last %v in day ticks)\n",
		weeks.Len(), weeks.Interval(0), weeks.Interval(weeks.Len()-1))
	return nil
}
