// Package calsys is a Go implementation of the calendar and temporal-rule
// system of Chandra, Segev and Stonebraker, "Implementing Calendars and
// Temporal Rules in Next Generation Databases" (ICDE 1994).
//
// It provides, as one assembled system:
//
//   - the calendar algebra over collection intervals (foreach, selection,
//     generate, caloperate) of §3.1-§3.2;
//   - the calendar expression language, parser, factorization optimizer and
//     windowed evaluation plans of §3.3-§3.4;
//   - an extensible relational store (the POSTGRES stand-in) with the
//     CALENDARS catalog of Figure 1;
//   - a Postquel-flavored query language with calendar-valued "on" clauses;
//   - time-based rules with RULE-INFO / RULE-TIME and the DBCRON daemon of
//     Figure 4;
//   - user-defined date arithmetic (the 30/360 bond calendar of §1) and
//     regular time series with generated valid time.
package calsys

import (
	"fmt"
	"io"
	"os"

	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	"calsys/internal/core/callang"
	calvet "calsys/internal/core/callang/vet"
	"calsys/internal/core/plan"
	"calsys/internal/datearith"
	"calsys/internal/postquel"
	"calsys/internal/rules"
	"calsys/internal/store"
	"calsys/internal/timeseries"
)

// DefaultEpoch is the paper's system start date, January 1 1987.
var DefaultEpoch = chronology.DefaultEpoch

// System assembles the full stack: store, calendar catalog, rule engine,
// query engine, and clock.
type System struct {
	db    *store.DB
	chron *chronology.Chronology
	cal   *caldb.Manager
	rules *rules.Engine
	query *postquel.Engine
	clock Clock
}

// Option configures Open.
type Option func(*options)

type options struct {
	epoch Civil
	clock Clock
	scope string
}

// WithEpoch anchors the chronology at a system start date other than
// 1987-01-01.
func WithEpoch(epoch Civil) Option {
	return func(o *options) { o.epoch = epoch }
}

// WithClock installs the clock used by now(), `today` and temporal rules.
// The default is a virtual clock starting at the epoch.
func WithClock(c Clock) Option {
	return func(o *options) { o.clock = c }
}

// WithCatalogScope prefixes this system's entries in the process-wide
// materialization cache (e.g. "tenant/<name>"). Systems with different
// scopes share the cache's byte budget but never each other's entries, and
// each keeps its own catalog generation counter — the serving layer's
// tenant-isolation mechanism.
func WithCatalogScope(scope string) Option {
	return func(o *options) { o.scope = scope }
}

// Open assembles a fresh system.
func Open(opts ...Option) (*System, error) {
	o := options{epoch: DefaultEpoch}
	for _, fn := range opts {
		fn(&o)
	}
	chron, err := chronology.New(o.epoch)
	if err != nil {
		return nil, err
	}
	if o.clock == nil {
		o.clock = rules.NewVirtualClock(0)
	}
	db := store.NewDB()
	if err := datearith.Register(db); err != nil {
		return nil, err
	}
	cal, err := caldb.NewScoped(db, chron, o.scope)
	if err != nil {
		return nil, err
	}
	re, err := rules.NewEngine(cal)
	if err != nil {
		return nil, err
	}
	q := postquel.NewEngine(cal, re, o.clock)
	return &System{db: db, chron: chron, cal: cal, rules: re, query: q, clock: o.clock}, nil
}

// MustOpen is Open, panicking on error (examples and tests).
func MustOpen(opts ...Option) *System {
	s, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// DB exposes the extensible store.
func (s *System) DB() *DB { return s.db }

// Chron exposes the chronology.
func (s *System) Chron() *Chronology { return s.chron }

// Rules exposes the rule engine.
func (s *System) Rules() *RuleEngine { return s.rules }

// Query exposes the Postquel engine.
func (s *System) Query() *QueryEngine { return s.query }

// Clock returns the system clock.
func (s *System) Clock() Clock { return s.clock }

// Now returns the current instant in epoch seconds.
func (s *System) Now() int64 { return s.clock.Now() }

// Today returns the current civil date under the system clock.
func (s *System) Today() Civil { return s.chron.CivilOf(s.clock.Now()) }

// MatStats snapshots the shared materialization cache's counters
// (hits/misses/evictions/bytes; process-wide, aggregated across catalogs).
func (s *System) MatStats() MatCacheStats { return s.cal.MatStats() }

// --- queries ------------------------------------------------------------

// Exec runs a batch of Postquel statements.
func (s *System) Exec(src string) ([]QueryResult, error) { return s.query.Exec(src) }

// ExecOne runs a single Postquel statement.
func (s *System) ExecOne(src string) (QueryResult, error) { return s.query.ExecOne(src) }

// --- calendars ----------------------------------------------------------

// UnboundedLifespan is a lifespan open at the upper end, starting at the
// epoch day.
func UnboundedLifespan() Lifespan { return Lifespan{Lo: 1, Hi: MaxDayTick} }

// DefineCalendar records a derived calendar in the CALENDARS catalog. The
// derivation may be a single expression or a full script; gran is usually
// GranAuto.
func (s *System) DefineCalendar(name, derivation string, gran Granularity) error {
	return s.cal.DefineDerived(name, derivation, UnboundedLifespan(), gran)
}

// DefineStoredCalendar records a calendar with explicit values, such as
// HOLIDAYS.
func (s *System) DefineStoredCalendar(name string, values *Calendar) error {
	return s.cal.DefineStored(name, values, UnboundedLifespan())
}

// ReplaceStoredCalendar updates a stored calendar's values.
func (s *System) ReplaceStoredCalendar(name string, values *Calendar) error {
	return s.cal.ReplaceStored(name, values)
}

// DropCalendar removes a calendar definition.
func (s *System) DropCalendar(name string) error { return s.cal.Drop(name) }

// CalendarEntryOf returns a calendar's catalog tuple.
func (s *System) CalendarEntryOf(name string) (*CalendarEntry, bool) { return s.cal.Lookup(name) }

// CalendarFigureRow renders a calendar's catalog tuple in the layout of
// Figure 1.
func (s *System) CalendarFigureRow(name string) (string, error) { return s.cal.FigureRow(name) }

// VetCalendar statically analyzes a derivation source as if it were being
// defined under name (empty for anonymous expressions) without touching the
// catalog, returning calvet's positioned CV001-CV009 diagnostics.
func (s *System) VetCalendar(name, derivation string) VetDiags { return s.cal.Vet(name, derivation) }

// VetDefinedCalendar re-runs the static analyzer over an already-defined
// calendar's derivation script.
func (s *System) VetDefinedCalendar(name string) (VetDiags, error) { return s.cal.VetDefined(name) }

// VetCatalog runs the fleet-level equivalence analysis over the whole
// calendar catalog: every symbolically-lowerable definition is canonicalized
// and definitions denoting identical element lists are grouped as merge
// candidates.
func (s *System) VetCatalog() []CalendarEquivClass {
	return calvet.AnalyzeCatalog(s.cal, calvet.Options{Chron: s.chron})
}

// VetRuleFleet groups temporal rules that provably fire on identical
// instants — candidates for merging into one rule.
func (s *System) VetRuleFleet() []RuleMergeGroup { return s.rules.VetFleet() }

// EvalCalendar parses and evaluates a calendar expression over a civil
// window.
func (s *System) EvalCalendar(src string, from, to Civil) (*Calendar, error) {
	return s.cal.EvalExpr(src, from, to)
}

// RunCalendarScript parses and runs a calendar script (with if/while) over
// a civil window; the environment exposes the system clock as `today`.
func (s *System) RunCalendarScript(src string, from, to Civil) (ScriptValue, error) {
	script, err := callang.ParseScript(src)
	if err != nil {
		return ScriptValue{}, err
	}
	env := s.cal.Env()
	env.Now = s.clock.Now
	return plan.RunScript(env, script, from, to)
}

// RunCalendarScriptWithWait is RunCalendarScript with a wait hook driving
// the paper's "do nothing" while-loops: wait is called once per probe of a
// still-true empty-bodied loop condition, and should advance the clock.
func (s *System) RunCalendarScriptWithWait(src string, from, to Civil, wait func() error) (ScriptValue, error) {
	script, err := callang.ParseScript(src)
	if err != nil {
		return ScriptValue{}, err
	}
	env := s.cal.Env()
	env.Now = s.clock.Now
	env.Wait = wait
	return plan.RunScript(env, script, from, to)
}

// WindowCosts compiles an expression twice — with the §3.4 selection
// look-ahead on and off — and returns both plans' generation costs (total
// ticks generated), the quantity the optimization reduces.
func (s *System) WindowCosts(src string, from, to Civil) (windowed, unwindowed int64, err error) {
	e, err := callang.ParseExpr(src)
	if err != nil {
		return 0, 0, err
	}
	env := s.cal.Env()
	env.Now = s.clock.Now
	pOn, err := plan.CompileExpr(env, e, nil, from, to)
	if err != nil {
		return 0, 0, err
	}
	envOff := *env
	envOff.DisableWindowInference = true
	pOff, err := plan.CompileExpr(&envOff, e, nil, from, to)
	if err != nil {
		return 0, 0, err
	}
	return pOn.GenerateCost(), pOff.GenerateCost(), nil
}

// CompileCalendar parses, factorizes and compiles an expression, returning
// the plan (for inspection; Figure 1's eval-plan column).
func (s *System) CompileCalendar(src string, from, to Civil) (*Plan, error) {
	e, err := callang.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	env := s.cal.Env()
	env.Now = s.clock.Now
	return plan.CompileExpr(env, e, nil, from, to)
}

// ParseTree renders the parse tree of a calendar expression before and
// after factorization (Figures 2 and 3).
func (s *System) ParseTree(src string) (initial, factorized string, err error) {
	e, err := callang.ParseExpr(src)
	if err != nil {
		return "", "", err
	}
	inlined, err := callang.Inline(e, catScripts{s.cal})
	if err != nil {
		return "", "", err
	}
	factored := callang.Factorize(inlined, s.cal)
	return callang.TreeString(inlined), callang.TreeString(factored), nil
}

// catScripts adapts the catalog to the inliner, exposing single-expression
// derivations only.
type catScripts struct{ m *caldb.Manager }

func (c catScripts) DerivationOf(name string) (*callang.Script, bool) {
	script, ok := c.m.DerivationOf(name)
	if !ok {
		return nil, false
	}
	if _, single := script.SingleExpr(); !single {
		return nil, false
	}
	return script, true
}

// --- rules ---------------------------------------------------------------

// OnCalendar declares a temporal rule "On <calendar expression> do action"
// with a Go action.
func (s *System) OnCalendar(name, calExpr string, action func(tx *Txn, firedAt int64) error) error {
	return s.rules.DefineTemporalRule(name, calExpr, FuncAction{
		Name: name,
		Fn: func(tx *Txn, _ *Event, at int64) error {
			return action(tx, at)
		},
	}, s.clock.Now())
}

// OnCalendars declares a batch of temporal rules in one RULE-TIME
// transaction, preparing each distinct calendar expression once — the fast
// path for defining large rule fleets over a shared set of expressions.
func (s *System) OnCalendars(defs []TemporalRuleDef) error {
	return s.rules.DefineTemporalRules(s.clock.Now(), defs)
}

// OnEvent declares an event rule with a Go condition and action.
func (s *System) OnEvent(name string, op EventOp, table string,
	cond func(tx *Txn, ev Event) (bool, error),
	action func(tx *Txn, ev *Event) error) error {
	return s.rules.DefineEventRule(name, op, table, cond, FuncAction{
		Name: name,
		Fn: func(tx *Txn, ev *Event, _ int64) error {
			return action(tx, ev)
		},
	})
}

// DropRule removes a rule of either kind.
func (s *System) DropRule(name string) error { return s.rules.DropRule(name) }

// StartDBCron creates the DBCRON daemon with probe period T seconds,
// anchored at the current clock instant. Drive it with AdvanceTo (virtual
// time) or Run (wall clock).
func (s *System) StartDBCron(T int64) (*DBCron, error) {
	return rules.NewDBCron(s.rules, T, s.clock.Now())
}

// StartDurableDBCron creates a durable DBCRON daemon: firings are recorded
// in the configured journal, failing actions retry with backoff until the
// budget moves them to RULE-DEADLETTER, and Recover replays the journal
// after a crash.
func (s *System) StartDurableDBCron(T int64, opts CronOptions) (*DBCron, error) {
	return rules.NewDBCronWith(s.rules, T, s.clock.Now(), opts)
}

// ReattachRule re-binds a Go action to a temporal rule restored from a
// snapshot, preserving its persisted trigger — an overdue trigger stays
// overdue, so crash recovery can catch it up.
func (s *System) ReattachRule(name string, action func(tx *Txn, firedAt int64) error) error {
	return s.rules.ReattachAction(name, FuncAction{
		Name: name,
		Fn: func(tx *Txn, _ *Event, at int64) error {
			return action(tx, at)
		},
	})
}

// DeadLetters lists RULE-DEADLETTER: firings that exhausted their retry
// budget, with the instant, attempt count and last error.
func (s *System) DeadLetters() ([]DeadLetter, error) { return s.rules.DeadLetters() }

// --- time series ----------------------------------------------------------

// NewRegularSeries creates a regular time series whose valid time is
// generated from calExpr, starting at from.
func (s *System) NewRegularSeries(name, calExpr string, from Civil) (*RegularSeries, error) {
	return timeseries.NewRegular(s.cal, name, calExpr, from)
}

// --- persistence -----------------------------------------------------------

// SaveSnapshot writes the whole database — user tables, the CALENDARS
// catalog and the rule catalogs — as a consistent text snapshot.
func (s *System) SaveSnapshot(w io.Writer) error { return s.db.Save(w) }

// OpenSnapshot assembles a system from a snapshot written by SaveSnapshot.
// Calendars and data are fully restored; rules reappear in RULE-INFO but
// their actions (which are code) must be reattached by redefining each rule
// — OrphanedRules lists them.
func OpenSnapshot(r io.Reader, opts ...Option) (*System, error) {
	o := options{epoch: DefaultEpoch}
	for _, fn := range opts {
		fn(&o)
	}
	chron, err := chronology.New(o.epoch)
	if err != nil {
		return nil, err
	}
	if o.clock == nil {
		o.clock = rules.NewVirtualClock(0)
	}
	db := store.NewDB()
	if err := datearith.Register(db); err != nil {
		return nil, err
	}
	if err := db.Load(r); err != nil {
		return nil, err
	}
	cal, err := caldb.NewScoped(db, chron, o.scope)
	if err != nil {
		return nil, err
	}
	re, err := rules.NewEngine(cal)
	if err != nil {
		return nil, err
	}
	q := postquel.NewEngine(cal, re, o.clock)
	return &System{db: db, chron: chron, cal: cal, rules: re, query: q, clock: o.clock}, nil
}

// OrphanedRules lists rules restored from a snapshot that still need their
// actions reattached.
func (s *System) OrphanedRules() []string { return s.rules.Orphans() }

// SaveSnapshotFile writes the snapshot to path atomically (temp file, fsync,
// rename): a crash mid-save leaves the previous snapshot intact.
func (s *System) SaveSnapshotFile(path string) error { return s.db.SaveFile(path, nil) }

// OpenSnapshotFile assembles a system from a snapshot file written by
// SaveSnapshotFile.
func OpenSnapshotFile(path string, opts ...Option) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenSnapshot(f, opts...)
}

// --- conveniences ----------------------------------------------------------

// Date builds a Civil date, validating it.
func Date(y, m, d int) (Civil, error) {
	c := Civil{Year: y, Month: m, Day: d}
	if !c.Valid() {
		return Civil{}, fmt.Errorf("calsys: invalid date %04d-%02d-%02d", y, m, d)
	}
	return c, nil
}

// MustDate is Date for literals known valid.
func MustDate(y, m, d int) Civil {
	c, err := Date(y, m, d)
	if err != nil {
		panic(err)
	}
	return c
}

// PointCalendar builds an order-1 calendar of single-tick intervals.
func PointCalendar(gran Granularity, ticks ...Tick) (*Calendar, error) {
	return calendar.FromPoints(gran, ticks)
}

// DayTickOf returns the day tick of a civil date under the system's epoch.
func (s *System) DayTickOf(d Civil) Tick { return s.chron.DayTick(d) }

// CivilOfDayTick inverts DayTickOf.
func (s *System) CivilOfDayTick(t Tick) Civil { return s.chron.CivilOfDayTick(t) }

// SecondsOf returns the epoch second of midnight on a civil date.
func (s *System) SecondsOf(d Civil) int64 { return s.chron.EpochSecondsOf(d) }
