module calsys

go 1.22
