#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke gate for the serving layer.
#
# Builds calserved and calload, boots the server on an ephemeral port,
# drives the mixed workload (tenant create -> recurrence rule -> expand ->
# next-instant -> CRUD), the expand-heavy workload (multi-year
# grouping/set-op expansions through the engine's sweep kernels), and the
# stampede workload (every client hammering the same expressions against a
# cold cache, through the matcache singleflight layer), converts the latency
# reports to benchjson artifacts, then SIGTERMs the server and asserts a
# graceful exit.
#
# Artifacts (in $SMOKE_OUT, default ./smoke-out):
#   calload.txt                mixed-workload latency table + Benchmark lines
#   BENCH_serve.json           benchjson rendering of the mixed run
#   calload_expand.txt         expand-heavy latency table + Benchmark lines
#   BENCH_serve_expand.json    benchjson rendering of the expand-heavy run
#   calload_stampede.txt       stampede latency table + Benchmark lines
#   BENCH_serve_stampede.json  benchjson rendering of the stampede run
#   calserved.log              server log
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${SMOKE_OUT:-smoke-out}"
mkdir -p "$OUT"
BIN="$OUT/bin"
mkdir -p "$BIN"

ADMIN_TOKEN="${CALSERVED_ADMIN_TOKEN:-smoke-admin-token}"

echo "serve-smoke: building"
go build -o "$BIN/calserved" ./cmd/calserved
go build -o "$BIN/calload" ./cmd/calload

echo "serve-smoke: booting calserved"
"$BIN/calserved" -addr 127.0.0.1:0 -admin-token "$ADMIN_TOKEN" -today 1993-01-01 \
    >"$OUT/calserved.log" 2>&1 &
SERVER_PID=$!
cleanup() {
    kill "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# Scrape the ephemeral address from the startup line.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^calserved: listening on //p' "$OUT/calserved.log" | head -n1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "serve-smoke: server died during startup" >&2
        cat "$OUT/calserved.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve-smoke: server never printed its address" >&2
    cat "$OUT/calserved.log" >&2
    exit 1
fi
echo "serve-smoke: server at $ADDR"

echo "serve-smoke: running calload (mixed)"
"$BIN/calload" -addr "$ADDR" -admin-token "$ADMIN_TOKEN" \
    -tenants 4 -clients 8 -requests 40 | tee "$OUT/calload.txt"

echo "serve-smoke: running calload (expand-heavy)"
"$BIN/calload" -addr "$ADDR" -admin-token "$ADMIN_TOKEN" \
    -tenants 4 -clients 8 -requests 25 -mix expand -tenant-prefix exp \
    | tee "$OUT/calload_expand.txt"

echo "serve-smoke: running calload (stampede)"
# One tenant, many clients, a fresh tenant prefix (fresh catalog generation
# = cold cache keys): every client misses on the same expressions at once,
# exercising the singleflight stampede control end to end.
"$BIN/calload" -addr "$ADDR" -admin-token "$ADMIN_TOKEN" \
    -tenants 1 -clients 16 -requests 9 -mix stampede -tenant-prefix st \
    | tee "$OUT/calload_stampede.txt"

echo "serve-smoke: rendering benchjson artifacts"
go run ./cmd/benchjson -o "$OUT/BENCH_serve.json" "$OUT/calload.txt"
go run ./cmd/benchjson -o "$OUT/BENCH_serve_expand.json" "$OUT/calload_expand.txt"
go run ./cmd/benchjson -o "$OUT/BENCH_serve_stampede.json" "$OUT/calload_stampede.txt"

echo "serve-smoke: draining server (SIGTERM)"
kill -TERM "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
    echo "serve-smoke: server exited $WAIT_STATUS on SIGTERM (want graceful 0)" >&2
    cat "$OUT/calserved.log" >&2
    exit 1
fi
grep -q "calserved: stopped" "$OUT/calserved.log" || {
    echo "serve-smoke: no graceful-stop line in server log" >&2
    cat "$OUT/calserved.log" >&2
    exit 1
}

echo "serve-smoke: OK (artifacts in $OUT)"
