# Mirrors .github/workflows/ci.yml: `make check` runs exactly what CI runs.
# staticcheck and govulncheck are skipped with a notice when the binaries
# are not installed (offline build environments); CI installs them.

GO ?= go

.PHONY: check build vet vet-calsys fmt-check test race chaos chaos-fleet bench-smoke bench \
	bench-json bench-compare bench-gate bench-cache profile fuzz-smoke staticcheck govulncheck \
	serve-smoke calvet-corpus

check: build vet vet-calsys fmt-check test race chaos chaos-fleet bench-smoke fuzz-smoke \
	serve-smoke calvet-corpus staticcheck govulncheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific vet passes (tickzero: the no-zero tick convention;
# errcode: structured error-envelope codes in HTTP handlers).
vet-calsys:
	$(GO) run ./cmd/vet-calsys ./...

# Golden gate on the calvet -fleet symbolic diagnostics: the clean corpus
# must stay silent, the adversarial corpus must report exactly its planted
# CV010/CV012/CV013 findings and equivalence class — no more, no fewer.
calvet-corpus:
	@$(GO) run ./cmd/calvet -fleet examples/calvet-corpus/clean.rules \
		examples/calvet-corpus/adversarial.rules > calvet-corpus.out || \
		{ echo "calvet-corpus: calvet -fleet failed" >&2; cat calvet-corpus.out; rm -f calvet-corpus.out; exit 1; }
	@if ! diff -u examples/calvet-corpus/expected.txt calvet-corpus.out; then \
		echo "calvet-corpus: diagnostics drifted from the golden (see examples/calvet-corpus/README.md)" >&2; \
		rm -f calvet-corpus.out; exit 1; \
	fi
	@rm -f calvet-corpus.out
	@echo "calvet-corpus: diagnostics match the golden"

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/store/... ./internal/rules/... ./internal/core/plan/... \
		./internal/core/matcache/... ./internal/serve/...

# Crash-recovery fault injection: the seeded kill-and-recover suites, run
# three times under the race detector. Set CHAOS_ARTIFACTS to a directory to
# keep the journals of failed runs (CI uploads them).
chaos:
	$(GO) test -race -count=3 ./internal/rules/ ./internal/rules/journal/ \
		./internal/faultinject/ ./internal/store/

# Sharded-fleet chaos: the multi-worker kill/steal matrix — every run
# SIGKILLs a shard owner and arms one seeded crash site across the lease,
# handoff, probe, fire, ack and journal layers, then proves fleet-wide
# exactly-once under FireAll (at-most-once under SkipMissed). Three
# repetitions under the race detector. Set CHAOS_ARTIFACTS to keep the
# per-shard journals of failed runs (CI uploads them).
chaos-fleet:
	$(GO) test -race -count=3 ./internal/rules/shard/

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem ./... | tee bench-smoke.txt

# End-to-end smoke of the serving layer: build calserved + calload, boot on
# an ephemeral port, drive the mixed workload, render the benchjson latency
# artifact, drain on SIGTERM. Artifacts land in smoke-out/ (set SMOKE_OUT to
# move them).
serve-smoke:
	./scripts/serve_smoke.sh

# Short fuzz runs: the calendar-language front end (parser + calvet) and the
# sweep kernels against the naive foreach/set-op oracles. `go test -fuzz`
# takes one target per invocation, hence two commands.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseAndVet -fuzztime=15s -run '^$$' ./internal/core/callang/
	$(GO) test -fuzz=FuzzSweepVsNaive -fuzztime=15s -run '^$$' ./internal/core/calendar/

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

# Full benchmark run (not part of check; takes a while).
bench:
	$(GO) test -bench=. -benchmem ./...

# Full benchmark sweep rendered as JSON (ns/op, B/op, allocs/op plus custom
# metrics) — the committed BENCH_core.json is produced by this target.
bench-json:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_core.json

# Warn-only drift check of a fresh smoke run against the committed baseline,
# then the hard gate (what the CI bench-smoke job runs).
bench-compare:
	$(GO) test -bench=. -benchtime=1x -benchmem ./... | \
		$(GO) run ./cmd/benchjson -compare BENCH_baseline.json -threshold 3 -
	$(MAKE) bench-gate

# Hard benchmark gate: the scheduling kernel (including the symbolic-calculus
# ablation arm), the warm materialized-calendar cache, the sweep join, and the
# endpoint-index kernels are run at a real benchtime and must stay within
# 1.25x of BENCH_baseline.json ns/op and allocs/op, or the build fails.
# A full second of measurement per benchmark averages out scheduler spikes,
# and -count=3 makes the gate best-of-three (benchjson keeps the fastest run
# per benchmark), so a regression must reproduce in every repetition — one
# noisy-neighbor episode cannot fail the build. The second command selects
# only the sweep arms (the generic fallback arms take ~50ms/op and are not
# gated). The two runs share one compare.
bench-gate:
	( $(GO) test -bench 'NextAfter|CacheColdVsWarm|EndpointSweepVsLinear' \
		-benchtime=1s -count=3 -benchmem . && \
	  $(GO) test -bench 'ForeachSweepVsGeneric/sweep' -benchtime=1s -count=3 -benchmem . && \
	  $(GO) test -run '^$$' -bench 'TimingWheelVsHeap' -benchtime=1s -count=3 -benchmem ./internal/rules && \
	  $(GO) test -run '^$$' -bench 'CacheParallelGet|CacheStampede' -benchtime=1s -count=3 -benchmem \
		./internal/core/matcache ) | \
		$(GO) run ./cmd/benchjson -compare BENCH_baseline.json \
			-gate 'BenchmarkNextAfter|BenchmarkNextAfterSymbolicAblation/symbolic|BenchmarkCacheColdVsWarm/warm|BenchmarkForeachSweepVsGeneric/sweep|BenchmarkEndpointSweepVsLinear/endpoint|BenchmarkTimingWheelVsHeap/wheel|BenchmarkCacheParallelGet/sharded|BenchmarkCacheStampede' \
			-gate-threshold 1.25 -gate-allocs-threshold 1.25 -

# Parallel cache benchmarks across GOMAXPROCS=1,4,8: the sharded read path
# against the preserved single-mutex arm, plus the 64-way stampede (which
# fails outright if singleflight ever runs more than one generation per
# (key, window)). The text report keeps the per-cpu lines; BENCH_cache.json
# keeps the fastest instance of each arm (benchjson folds the -N suffixes).
bench-cache:
	$(GO) test -run '^$$' -bench 'CacheParallelGet|CacheStampede' \
		-benchtime=1s -count=3 -cpu=1,4,8 -benchmem ./internal/core/matcache | \
		tee bench-cache.txt
	$(GO) run ./cmd/benchjson -o BENCH_cache.json bench-cache.txt

# CPU + heap profile of one probe-day over the 100k-rule fleet; inspect with
# `go tool pprof cpu.prof` (or mem.prof). The live daemon exposes the same
# profiles over HTTP via `dbcrond -pprof localhost:6060`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkProbe100kRules -benchtime=10x \
		-cpuprofile cpu.prof -memprofile mem.prof ./internal/rules
	@echo "wrote cpu.prof and mem.prof; try: go tool pprof cpu.prof"
