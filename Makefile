# Mirrors .github/workflows/ci.yml: `make check` runs exactly what CI runs.

GO ?= go

.PHONY: check build vet fmt-check test race bench-smoke bench

check: build vet fmt-check test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/store/... ./internal/rules/... ./internal/core/plan/...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./... | tee bench-smoke.txt

# Full benchmark run (not part of check; takes a while).
bench:
	$(GO) test -bench=. -benchmem ./...
