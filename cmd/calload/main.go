// Command calload drives a workload against a running calserved and reports
// latency percentiles and throughput. The summary is printed as a human
// table plus Benchmark-formatted lines that cmd/benchjson parses into
// machine-readable artifacts:
//
//	calload -addr 127.0.0.1:8437 -admin-token secret | tee calload.txt
//	go run ./cmd/benchjson -o BENCH_serve.json calload.txt
//
// -mix picks the preset: "mixed" (default) interleaves CRUD, expand, and
// next-instant the way an interactive tenant would; "expand" is
// expansion-heavy over multi-year windows of grouping and set-op
// expressions — the requests that run the engine's sweep kernels — so the
// serve smoke exercises those kernels end to end; "stampede" aims every
// client at the same handful of expressions over one window against a cold
// cache — the thundering-herd shape that exercises the matcache
// singleflight layer (run it with a fresh -tenant-prefix so the cache
// really is cold).
//
// Any failed request makes the run exit nonzero — the CI smoke gate treats
// one failure as a broken server.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type opStat struct {
	durs []time.Duration
	fail int
}

// result is one request's outcome.
type result struct {
	op  string
	dur time.Duration
	ok  bool
	msg string // failure detail
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "calload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8437", "calserved address")
		adminToken = flag.String("admin-token", os.Getenv("CALSERVED_ADMIN_TOKEN"), "admin bearer token")
		tenants    = flag.Int("tenants", 4, "tenant namespaces to provision")
		clients    = flag.Int("clients", 8, "concurrent clients")
		requests   = flag.Int("requests", 50, "workload requests per client")
		seed       = flag.Int64("seed", 1, "workload mix seed")
		mix        = flag.String("mix", "mixed", "workload preset: mixed | expand | stampede")
		prefix     = flag.String("tenant-prefix", "load", "tenant name prefix (runs against one server need distinct prefixes)")
	)
	flag.Parse()
	if *adminToken == "" {
		return fmt.Errorf("-admin-token (or $CALSERVED_ADMIN_TOKEN) is required")
	}
	if *tenants < 1 || *clients < 1 || *requests < 1 {
		return fmt.Errorf("-tenants, -clients and -requests must be positive")
	}
	if *mix != "mixed" && *mix != "expand" && *mix != "stampede" {
		return fmt.Errorf("-mix must be mixed, expand or stampede, got %q", *mix)
	}

	lg := &loadgen{base: "http://" + *addr, client: &http.Client{Timeout: 30 * time.Second}}

	// Provision tenants, each with a stored holidays calendar and one
	// temporal rule, so the workload exercises the catalog too.
	tokens := make([]string, *tenants)
	for i := range tokens {
		name := fmt.Sprintf("%s%d", *prefix, i)
		status, body, err := lg.do("POST", "/v1/tenants", *adminToken,
			map[string]any{"name": name})
		if err != nil {
			return fmt.Errorf("create tenant %s: %v", name, err)
		}
		if status != http.StatusCreated {
			return fmt.Errorf("create tenant %s: status %d: %s", name, status, body)
		}
		var resp struct {
			Token string `json:"token"`
		}
		if err := json.Unmarshal(body, &resp); err != nil || resp.Token == "" {
			return fmt.Errorf("create tenant %s: bad response %s", name, body)
		}
		tokens[i] = resp.Token
		if status, body, err = lg.do("PUT", "/v1/tenants/"+name+"/calendars/holidays", resp.Token,
			map[string]any{"days": []string{"1993-01-01", "1993-07-04", "1993-12-25"}}); err != nil || status != http.StatusCreated {
			return fmt.Errorf("seed holidays for %s: %v status %d: %s", name, err, status, body)
		}
		if status, body, err = lg.do("PUT", "/v1/tenants/"+name+"/rules/board", resp.Token,
			map[string]any{"recurrence": map[string]any{
				"cycle": "monthly", "ordinal": "third", "wdays": []string{"friday"},
			}}); err != nil || status != http.StatusCreated {
			return fmt.Errorf("seed rule for %s: %v status %d: %s", name, err, status, body)
		}
	}

	// Fan out the workload: clients are assigned to tenants round-robin,
	// each with its own deterministic mix stream. A collector drains the
	// results channel while the clients run.
	results := make(chan result, 256)
	stats := map[string]*opStat{}
	var all []time.Duration
	failed := 0
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for r := range results {
			st := stats[r.op]
			if st == nil {
				st = &opStat{}
				stats[r.op] = st
			}
			if !r.ok {
				st.fail++
				failed++
				fmt.Fprintf(os.Stderr, "calload: FAIL %s: %s\n", r.op, r.msg)
				continue
			}
			st.durs = append(st.durs, r.dur)
			all = append(all, r.dur)
		}
	}()
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("%s%d", *prefix, c%*tenants)
			lg.client2(results, tenant, tokens[c%*tenants], c, *requests, *mix, rand.New(rand.NewSource(*seed+int64(c))))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	<-collected

	report(*mix, stats, all, elapsed)
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, len(all)+failed)
	}
	return nil
}

type loadgen struct {
	base   string
	client *http.Client
}

// do issues one JSON request.
func (lg *loadgen) do(method, path, token string, body any) (int, []byte, error) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, lg.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := lg.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), nil
}

// expandExprs are the expression bodies the expand-heavy preset cycles
// through: groupings, end-relative selections, and set ops — each one runs
// the engine's sweep kernels over the multi-year request window.
var expandExprs = []string{
	"DAYS:during:WEEKS",
	"DAYS:during:MONTHS",
	"[n]/DAYS:during:MONTHS",
	"WEEKS:overlaps:MONTHS",
	"[n]/DAYS:<:MONTHS",
	"(DAYS:during:WEEKS) - holidays",
	"([1]/DAYS:during:WEEKS):intersects:(DAYS:during:MONTHS)",
}

// client2 runs one client's request loop, posting results.
func (lg *loadgen) client2(results chan<- result, tenant, token string, id, requests int, mix string, rng *rand.Rand) {
	base := "/v1/tenants/" + tenant
	scratch := fmt.Sprintf("scratch-c%d", id)
	one := func(op, method, path string, body any, wantStatus int) {
		t0 := time.Now()
		status, raw, err := lg.do(method, path, token, body)
		dur := time.Since(t0)
		if err != nil {
			results <- result{op: op, msg: err.Error()}
			return
		}
		if status != wantStatus {
			results <- result{op: op, msg: fmt.Sprintf("%s %s: status %d want %d: %s", method, path, status, wantStatus, raw)}
			return
		}
		results <- result{op: op, dur: dur, ok: true}
	}
	if mix == "stampede" {
		// Every client walks the same short expression list in the same
		// order over one fixed window: request i of every client is
		// byte-identical, so a cold cache sees N concurrent misses per
		// (expression, window) and the server's singleflight layer should
		// collapse them to one generation each. No rng — divergence would
		// dilute the herd.
		for i := 0; i < requests; i++ {
			one("expand", "POST", base+"/expand", map[string]any{
				"expr": expandExprs[i%3],
				"from": "1993-01-01", "to": "1996-12-31",
			}, http.StatusOK)
		}
		return
	}
	if mix == "expand" {
		for i := 0; i < requests; i++ {
			if rng.Intn(8) == 0 { // a trickle of next-instant keeps the scheduler warm
				one("next", "POST", base+"/next", map[string]any{
					"rule": "board", "after": "1993-06-01",
				}, http.StatusOK)
				continue
			}
			one("expand", "POST", base+"/expand", map[string]any{
				"expr": expandExprs[rng.Intn(len(expandExprs))],
				"from": "1993-01-01", "to": "1996-12-31",
			}, http.StatusOK)
		}
		return
	}
	for i := 0; i < requests; i++ {
		switch rng.Intn(6) {
		case 0: // windowed expansion off a compiled recurrence
			one("expand", "POST", base+"/expand", map[string]any{
				"recurrence": map[string]any{"cycle": "monthly", "ordinal": "third", "wdays": []string{"friday"}},
				"from":       "1993-01-01", "to": "1993-12-31",
			}, http.StatusOK)
		case 1: // windowed expansion over the tenant catalog
			one("expand", "POST", base+"/expand", map[string]any{
				"expr": "holidays", "from": "1993-01-01", "to": "1993-12-31",
			}, http.StatusOK)
		case 2: // next instant on the cross-tenant shared plan
			one("next", "POST", base+"/next", map[string]any{
				"recurrence": map[string]any{"cycle": "yearly", "month": 7, "days": []int{4}},
			}, http.StatusOK)
		case 3: // next firing of the seeded rule
			one("next", "POST", base+"/next", map[string]any{
				"rule": "board", "after": "1993-06-01",
			}, http.StatusOK)
		case 4: // catalog read
			one("read", "GET", base+"/calendars/holidays", nil, http.StatusOK)
		case 5: // catalog write: replace the stored calendar in place
			days := []string{"1993-01-01", "1993-07-04", "1993-12-25"}
			if rng.Intn(2) == 0 {
				days = append(days, "1993-11-25")
			}
			one("write", "PUT", base+"/calendars/holidays", map[string]any{"days": days}, http.StatusOK)
		}
	}
	// One define+drop cycle per client exercises vet-on-write and deletes.
	one("write", "PUT", base+"/calendars/"+scratch, map[string]any{
		"derivation": "[1,2,3,4,5]/DAYS:during:WEEKS",
	}, http.StatusCreated)
	one("write", "DELETE", base+"/calendars/"+scratch, nil, http.StatusNoContent)
}

// percentile returns the p-th percentile (0 < p <= 100) of durs using the
// nearest-rank method; durs must be sorted ascending.
func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	rank := int(float64(len(durs))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(durs) {
		rank = len(durs) - 1
	}
	return durs[rank]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// report prints the human table and the Benchmark lines benchjson parses.
// The summary line carries the preset name so the mixed and expand artifacts
// stay distinct benchmarks.
func report(mix string, stats map[string]*opStat, all []time.Duration, elapsed time.Duration) {
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ops := make([]string, 0, len(stats))
	for op := range stats {
		ops = append(ops, op)
	}
	sort.Strings(ops)

	fmt.Printf("%-8s %8s %6s %10s %10s %10s\n", "op", "count", "fail", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, op := range ops {
		st := stats[op]
		sort.Slice(st.durs, func(i, j int) bool { return st.durs[i] < st.durs[j] })
		fmt.Printf("%-8s %8d %6d %10.3f %10.3f %10.3f\n", op, len(st.durs), st.fail,
			ms(percentile(st.durs, 50)), ms(percentile(st.durs, 95)), ms(percentile(st.durs, 99)))
	}
	rps := float64(len(all)) / elapsed.Seconds()
	fmt.Printf("%-8s %8d %6s %10.3f %10.3f %10.3f   %.0f req/s\n\n", "total", len(all), "-",
		ms(percentile(all, 50)), ms(percentile(all, 95)), ms(percentile(all, 99)), rps)

	// Benchmark-formatted lines: name, iteration count, then (value, unit)
	// pairs — the format cmd/benchjson ingests.
	var mean time.Duration
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		mean = sum / time.Duration(len(all))
	}
	summary := "BenchmarkServeMixed"
	switch mix {
	case "expand":
		summary = "BenchmarkServeExpand"
	case "stampede":
		summary = "BenchmarkServeStampede"
	}
	fmt.Printf("%s %d %d ns/op %.3f p50-ms %.3f p95-ms %.3f p99-ms %.1f req/s\n",
		summary, len(all), mean.Nanoseconds(), ms(percentile(all, 50)), ms(percentile(all, 95)), ms(percentile(all, 99)), rps)
	for _, op := range ops {
		st := stats[op]
		if len(st.durs) == 0 {
			continue
		}
		var sum time.Duration
		for _, d := range st.durs {
			sum += d
		}
		fmt.Printf("BenchmarkServe_%s %d %d ns/op %.3f p50-ms %.3f p95-ms %.3f p99-ms\n",
			op, len(st.durs), (sum / time.Duration(len(st.durs))).Nanoseconds(),
			ms(percentile(st.durs, 50)), ms(percentile(st.durs, 95)), ms(percentile(st.durs, 99)))
	}
}
