package main

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms, sorted
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(durs, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := percentile(one, p); got != 7*time.Millisecond {
			t.Errorf("percentile(one, %v) = %v", p, got)
		}
	}
}
