// Command benchjson converts `go test -bench` text output into a stable
// JSON document (BENCH_core.json), and compares two such documents for the
// CI regression smoke.
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -o BENCH_core.json
//	go run ./cmd/benchjson -compare BENCH_baseline.json BENCH_core.json
//
// Compare mode prints a warning line per metric that regressed beyond the
// threshold and by default exits 0: bench-smoke timings (one iteration,
// shared CI hardware) are too noisy to gate a build on wholesale, but the
// warnings make drift visible in the job log.
//
// The -gate flag promotes a subset to a hard gate: benchmarks whose name
// matches the regexp fail the compare (exit 1) when their ns/op regresses
// beyond -gate-threshold (default 1.25, i.e. >25% slower than baseline).
// Gated benchmarks should be run with a real -benchtime, not 1x:
//
//	go test -bench 'NextAfter' -benchtime=100x ./... | \
//	    go run ./cmd/benchjson -compare BENCH_baseline.json \
//	        -gate 'BenchmarkNextAfter' -gate-threshold 1.25
//
// -gate-allocs-threshold (0 = off) additionally fails gated benchmarks whose
// allocs/op grows beyond that factor of the baseline — allocation counts are
// deterministic per build, so a tighter factor than ns/op is safe. A
// baseline of 0 allocs/op tolerates up to 2 allocs/op of measurement slack
// before failing (a steady-state zero-allocation loop must stay one).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result: the trailing -N GOMAXPROCS suffix is
// stripped from the name so runs from differently shaped machines compare.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	baseline := flag.String("compare", "", "baseline JSON file: compare instead of convert")
	threshold := flag.Float64("threshold", 2.0, "warn when a metric grows beyond this factor of the baseline")
	gate := flag.String("gate", "", "regexp of benchmark names whose ns/op regressions fail the compare")
	gateThreshold := flag.Float64("gate-threshold", 1.25, "fail when a gated benchmark's ns/op grows beyond this factor")
	gateAllocs := flag.Float64("gate-allocs-threshold", 0, "also fail when a gated benchmark's allocs/op grows beyond this factor (0 disables)")
	flag.Parse()

	if *baseline != "" {
		var gateRe *regexp.Regexp
		if *gate != "" {
			re, err := regexp.Compile(*gate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -gate:", err)
				os.Exit(1)
			}
			gateRe = re
		}
		if err := compare(*baseline, flag.Arg(0), *threshold, gateRe, *gateThreshold, *gateAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. Non-benchmark lines (test results,
// package headers, PASS/ok) are skipped; goos/goarch/cpu headers are kept.
// A benchmark appearing more than once (a `-count=N` run) keeps its fastest
// instance — best-of-N is the stable statistic on shared hardware, and it
// means a gated regression must reproduce in every repetition to fail.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			if j, seen := byName[b.Name]; seen {
				if b.Metrics["ns/op"] < rep.Benchmarks[j].Metrics["ns/op"] {
					rep.Benchmarks[j] = b
				}
				continue
			}
			byName[b.Name] = len(rep.Benchmarks)
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// parseLine decodes one result line:
//
//	BenchmarkName/sub-8   1234   5678 ns/op   91 B/op   2 allocs/op
//
// Metrics are (value, unit) pairs after the iteration count; custom
// b.ReportMetric units come through unchanged.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// zeroAllocsSlack is the absolute allocs/op a gated benchmark with a
// zero-alloc baseline may grow to before the allocs gate fails it: a ratio
// gate cannot catch 0 -> N regressions.
const zeroAllocsSlack = 2

// compare prints drift between a baseline JSON and a current run (a JSON
// file when the argument ends in .json, otherwise bench text — "-" or empty
// reads text from stdin). Metric growth beyond `threshold` warns; for
// benchmarks matching gateRe, ns/op growth beyond gateThreshold fails the
// compare with a non-nil error, as does allocs/op growth beyond
// allocsThreshold when that is non-zero.
func compare(basePath, curPath string, threshold float64, gateRe *regexp.Regexp, gateThreshold, allocsThreshold float64) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	var cur *Report
	if strings.HasSuffix(curPath, ".json") {
		if cur, err = load(curPath); err != nil {
			return err
		}
	} else {
		in := io.Reader(os.Stdin)
		if curPath != "" && curPath != "-" {
			f, err := os.Open(curPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if cur, err = parse(in); err != nil {
			return err
		}
	}
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	warned, failed, gated := 0, 0, 0
	for _, b := range cur.Benchmarks {
		prev, ok := baseBy[b.Name]
		if !ok {
			continue
		}
		if gateRe != nil && gateRe.MatchString(b.Name) {
			gated++
			pv, pok := prev.Metrics["ns/op"]
			if v, vok := b.Metrics["ns/op"]; pok && vok && pv > 0 && v > pv*gateThreshold {
				fmt.Printf("FAIL %s: ns/op %.6g -> %.6g (%.2fx over baseline, gate %.2fx)\n",
					b.Name, pv, v, v/pv, gateThreshold)
				failed++
			}
			if allocsThreshold > 0 {
				pa, paok := prev.Metrics["allocs/op"]
				if a, aok := b.Metrics["allocs/op"]; paok && aok {
					limit := pa * allocsThreshold
					if pa == 0 {
						limit = zeroAllocsSlack
					}
					if a > limit {
						fmt.Printf("FAIL %s: allocs/op %.6g -> %.6g (limit %.6g, allocs gate %.2fx)\n",
							b.Name, pa, a, limit, allocsThreshold)
						failed++
					}
				}
			}
		}
		for unit, v := range b.Metrics {
			pv, ok := prev.Metrics[unit]
			if !ok || pv <= 0 {
				continue
			}
			if v > pv*threshold {
				fmt.Printf("WARN %s: %s %.6g -> %.6g (%.2fx over baseline, threshold %.2fx)\n",
					b.Name, unit, pv, v, v/pv, threshold)
				warned++
			}
		}
	}
	fmt.Printf("benchjson: compared %d benchmarks against %s: %d warning(s), %d gated, %d gate failure(s)\n",
		len(cur.Benchmarks), basePath, warned, gated, failed)
	if failed > 0 {
		return fmt.Errorf("%d gated benchmark regression(s)", failed)
	}
	return nil
}
