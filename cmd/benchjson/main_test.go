package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: calsys
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkE2Generate/WEEKS/years=10-8         	   15900	     14843 ns/op	    9536 B/op	       2 allocs/op
BenchmarkPeriodicGenerateColdVsWarm/warm/MONTHS 	 1664301	       724.0 ns/op	    2112 B/op	       2 allocs/op
BenchmarkMatcacheFootprint                   	    1755	    727927 ns/op	       264.0 cachedB/cal	     68892 materializedB/cal
--- FAIL: BenchmarkBroken
    bench_test.go:1: boom
PASS
ok  	calsys	1.234s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("headers = %q %q %q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	by := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		by[b.Name] = b
	}
	// The -8 GOMAXPROCS suffix is stripped.
	gen, ok := by["BenchmarkE2Generate/WEEKS/years=10"]
	if !ok {
		t.Fatalf("suffix not stripped: %+v", rep.Benchmarks)
	}
	if gen.Iterations != 15900 || gen.Metrics["ns/op"] != 14843 ||
		gen.Metrics["B/op"] != 9536 || gen.Metrics["allocs/op"] != 2 {
		t.Errorf("generate metrics = %+v", gen)
	}
	if m := by["BenchmarkPeriodicGenerateColdVsWarm/warm/MONTHS"].Metrics; m["ns/op"] != 724.0 {
		t.Errorf("fractional ns/op = %v", m)
	}
	// Custom ReportMetric units come through unchanged.
	if m := by["BenchmarkMatcacheFootprint"].Metrics; m["cachedB/cal"] != 264.0 || m["materializedB/cal"] != 68892 {
		t.Errorf("custom metrics = %v", m)
	}
	// Sorted by name.
	for i := 1; i < len(rep.Benchmarks); i++ {
		if rep.Benchmarks[i-1].Name > rep.Benchmarks[i].Name {
			t.Errorf("benchmarks not sorted: %q after %q", rep.Benchmarks[i].Name, rep.Benchmarks[i-1].Name)
		}
	}
}

func TestParseBestOfN(t *testing.T) {
	rep, err := parse(strings.NewReader(`BenchmarkX 100 200 ns/op 9 allocs/op
BenchmarkX 100 150 ns/op 4 allocs/op
BenchmarkX 100 180 ns/op 5 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// The fastest instance wins, as a whole (its allocs/op come along).
	if m := rep.Benchmarks[0].Metrics; m["ns/op"] != 150 || m["allocs/op"] != 4 {
		t.Errorf("best-of-N metrics = %v, want ns/op 150 allocs/op 4", m)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX abc 1 ns/op",
		"BenchmarkX 100",
		"BenchmarkX 100 fast very",
	} {
		if b, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, b)
		}
	}
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"benchmarks": [
		{"name": "BenchmarkNextAfter/weekly/kernel", "iterations": 100, "metrics": {"ns/op": 100}},
		{"name": "BenchmarkOther", "iterations": 100, "metrics": {"ns/op": 100}}
	]}`)
	gate := regexp.MustCompile("BenchmarkNextAfter")

	// Within the gate threshold: no error, even though the warn threshold
	// and the ungated benchmark regressed.
	cur := write("ok.json", `{"benchmarks": [
		{"name": "BenchmarkNextAfter/weekly/kernel", "iterations": 100, "metrics": {"ns/op": 120}},
		{"name": "BenchmarkOther", "iterations": 100, "metrics": {"ns/op": 900}}
	]}`)
	if err := compare(base, cur, 2.0, gate, 1.25, 0); err != nil {
		t.Fatalf("compare within gate: %v", err)
	}

	// A gated ns/op regression beyond the factor fails the compare.
	bad := write("bad.json", `{"benchmarks": [
		{"name": "BenchmarkNextAfter/weekly/kernel", "iterations": 100, "metrics": {"ns/op": 130}}
	]}`)
	if err := compare(base, bad, 2.0, gate, 1.25, 0); err == nil {
		t.Fatal("compare accepted a gated regression")
	}
	// The same regression without a gate stays warn-only.
	if err := compare(base, bad, 2.0, nil, 1.25, 0); err != nil {
		t.Fatalf("ungated compare errored: %v", err)
	}
	// A gated benchmark absent from the baseline is not a failure (new
	// benchmark; the baseline refresh picks it up).
	fresh := write("fresh.json", `{"benchmarks": [
		{"name": "BenchmarkNextAfter/brand/new", "iterations": 100, "metrics": {"ns/op": 500}}
	]}`)
	if err := compare(base, fresh, 2.0, gate, 1.25, 0); err != nil {
		t.Fatalf("compare failed on a benchmark missing from baseline: %v", err)
	}
}

func TestCompareGateAllocs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"benchmarks": [
		{"name": "BenchmarkSweep/endpoint", "iterations": 100, "metrics": {"ns/op": 100, "allocs/op": 4}},
		{"name": "BenchmarkSweep/zero", "iterations": 100, "metrics": {"ns/op": 100, "allocs/op": 0}}
	]}`)
	gate := regexp.MustCompile("BenchmarkSweep")

	// Within both gates: no error.
	ok := write("ok.json", `{"benchmarks": [
		{"name": "BenchmarkSweep/endpoint", "iterations": 100, "metrics": {"ns/op": 110, "allocs/op": 5}},
		{"name": "BenchmarkSweep/zero", "iterations": 100, "metrics": {"ns/op": 100, "allocs/op": 2}}
	]}`)
	if err := compare(base, ok, 2.0, gate, 1.25, 1.25); err != nil {
		t.Fatalf("compare within allocs gate: %v", err)
	}

	// allocs/op beyond the factor fails even with ns/op flat.
	bad := write("bad.json", `{"benchmarks": [
		{"name": "BenchmarkSweep/endpoint", "iterations": 100, "metrics": {"ns/op": 100, "allocs/op": 9}}
	]}`)
	if err := compare(base, bad, 2.0, gate, 1.25, 1.25); err == nil {
		t.Fatal("compare accepted a gated allocs/op regression")
	}
	// The same run passes with the allocs gate disabled (0).
	if err := compare(base, bad, 2.0, gate, 1.25, 0); err != nil {
		t.Fatalf("disabled allocs gate errored: %v", err)
	}

	// A zero-alloc baseline: a ratio can't catch 0 -> N, the absolute slack
	// does.
	grown := write("grown.json", `{"benchmarks": [
		{"name": "BenchmarkSweep/zero", "iterations": 100, "metrics": {"ns/op": 100, "allocs/op": 3}}
	]}`)
	if err := compare(base, grown, 2.0, gate, 1.25, 1.25); err == nil {
		t.Fatal("compare accepted allocs growth from a zero-alloc baseline")
	}
}
