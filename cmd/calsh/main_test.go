package main

import (
	"bufio"
	"strings"
	"testing"

	"calsys"
)

func newTestShell(t *testing.T) (*shell, *strings.Builder) {
	t.Helper()
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	return &shell{sys: sys, clock: clock, out: bufio.NewWriter(&out)}, &out
}

func TestShellPostquelAndDotCommands(t *testing.T) {
	sh, out := newTestShell(t)
	lines := []string{
		`create s (k text, v int)`,
		`append s (k = "a", v = 1)`,
		`retrieve (s.k, s.v)`,
		`define calendar Tuesdays as "[2]/DAYS:during:WEEKS"`,
		`.fig1 Tuesdays`,
		`.cal Tuesdays 1993-01-01 1993-01-31`,
		`.tree [2]/DAYS:during:WEEKS`,
		`.plan [2]/DAYS:during:WEEKS 1993-01-01 1993-01-31`,
		`.now`,
		`.cron 86400`,
		`.advance 2`,
		`.help`,
	}
	for _, line := range lines {
		if err := sh.dispatch(line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	sh.out.Flush()
	text := out.String()
	for _, want := range []string{
		"created table s",
		"appended 1 tuple",
		"a | 1",
		"defined calendar Tuesdays",
		"Derivation-Script | {[2]/(DAYS:during:WEEKS);}",
		"(2190,2190)",
		"foreach during (strict)",
		"GENERATE WEEKS",
		"1987-01-01",
		"dbcron started",
		"now 1987-01-03",
		".quit",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("shell output missing %q:\n%s", want, text)
		}
	}
}

func TestShellScriptCommand(t *testing.T) {
	sh, out := newTestShell(t)
	if err := sh.dispatch(`.script {return ([n]/DAYS:during:MONTHS);}`); err != nil {
		t.Fatal(err)
	}
	sh.out.Flush()
	if !strings.Contains(out.String(), "(31,31)") {
		t.Errorf("script output:\n%s", out.String())
	}
}

func TestShellCronFiresOnAdvance(t *testing.T) {
	sh, out := newTestShell(t)
	for _, line := range []string{
		`create alerts (msg text)`,
		`define temporal rule daily on DAYS do ( append alerts (msg = "tick") )`,
		`.cron 86400`,
		`.advance 3`,
		`retrieve (count(alerts.msg))`,
	} {
		if err := sh.dispatch(line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	sh.out.Flush()
	text := out.String()
	if !strings.Contains(text, "fired daily") {
		t.Errorf("no firing logged:\n%s", text)
	}
	if !strings.Contains(text, "3") {
		t.Errorf("expected 3 alerts:\n%s", text)
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newTestShell(t)
	bad := []string{
		`.cal`,
		`.script`,
		`.tree`,
		`.fig1`,
		`.fig1 Missing`,
		`.advance x`,
		`.advance -1`,
		`.cron x`,
		`.cron 0`,
		`.bogus`,
		`frobnicate the database`,
		`.cal ][`,
		`.plan ][`,
	}
	for _, line := range bad {
		if err := sh.dispatch(line); err == nil {
			t.Errorf("dispatch(%q) should fail", line)
		}
	}
	if err := sh.dispatch(".vet"); err == nil {
		t.Error("bare .vet should fail with usage")
	}
}

func TestShellVetCommand(t *testing.T) {
	sh, out := newTestShell(t)
	lines := []string{
		`define calendar Tuesdays as "[2]/DAYS:during:WEEKS"`,
		`.vet Tuesdays`,
		`.vet NOPE:during:MONTHS`,
		`.vet [8]/DAYS:during:WEEKS`,
		`:vet {x = DAYS:during:WEEKS; return (WEEKS);}`,
	}
	for _, line := range lines {
		if err := sh.dispatch(line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	sh.out.Flush()
	text := out.String()
	for _, want := range []string{
		"ok: no diagnostics", // Tuesdays vets clean
		`error CV001: undefined calendar reference "NOPE"`,
		"warning CV012", // [8] provably beyond the 7 days per week
		"warning CV006", // x assigned but never used
		"1:1:",          // positions are rendered
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vet output missing %q:\n%s", want, text)
		}
	}
}

func TestShellExprWindowParsing(t *testing.T) {
	sh, _ := newTestShell(t)
	expr, from, to, err := sh.exprWindow("Tuesdays 1993-01-01 1993-01-31")
	if err != nil || expr != "Tuesdays" {
		t.Fatalf("exprWindow: %q, %v", expr, err)
	}
	if from != calsys.MustDate(1993, 1, 1) || to != calsys.MustDate(1993, 1, 31) {
		t.Errorf("window = %v..%v", from, to)
	}
	// No dates: default window around the virtual year.
	expr, from, to, err = sh.exprWindow("[2]/DAYS:during:WEEKS")
	if err != nil || expr != "[2]/DAYS:during:WEEKS" {
		t.Fatalf("exprWindow: %q, %v", expr, err)
	}
	if from.Year != 1987 || to.Year != 1987 {
		t.Errorf("default window = %v..%v", from, to)
	}
	if _, _, _, err := sh.exprWindow(""); err == nil {
		t.Error("empty exprWindow should fail")
	}
}

func TestShellSaveLoad(t *testing.T) {
	sh, out := newTestShell(t)
	dir := t.TempDir()
	file := dir + "/snap.db"
	for _, line := range []string{
		`create s (k text)`,
		`append s (k = "kept")`,
		`define calendar Mondays as "[1]/DAYS:during:WEEKS"`,
		`.save ` + file,
		`.load ` + file,
		`retrieve (s.k)`,
		`.cal Mondays 1993-01-01 1993-01-31`,
	} {
		if err := sh.dispatch(line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	sh.out.Flush()
	text := out.String()
	for _, want := range []string{"saved snapshot", "loaded", "kept", "(2196,2196)"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if err := sh.dispatch(`.save`); err == nil {
		t.Error(".save without file should fail")
	}
	if err := sh.dispatch(`.load /nonexistent/nope`); err == nil {
		t.Error(".load of missing file should fail")
	}
}

func TestShellVetFleetCommand(t *testing.T) {
	sh, out := newTestShell(t)
	lines := []string{
		`define calendar Mondays as "[1]/DAYS:during:WEEKS"`,
		`define calendar WeekStarts as "[1]/DAYS.during.WEEKS"`,
		`define temporal rule daily on "DAYS" do ( retrieve (s.k) )`,
		`define temporal rule midnight on "[1]/HOURS:during:DAYS" do ( retrieve (s.k) )`,
		`.vetfleet`,
	}
	for _, line := range lines {
		if err := sh.dispatch(line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	sh.out.Flush()
	text := out.String()
	for _, want := range []string{
		"calendars: Mondays, WeekStarts denote identical calendars; keep one and alias the rest",
		"rules: rules daily, midnight fire on identical instants — merge them",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vetfleet output missing %q:\n%s", want, text)
		}
	}

	// An empty catalog reports cleanly.
	sh2, out2 := newTestShell(t)
	if err := sh2.dispatch(".vetfleet"); err != nil {
		t.Fatal(err)
	}
	sh2.out.Flush()
	if !strings.Contains(out2.String(), "ok: no equivalent definitions") {
		t.Errorf("empty vetfleet output: %s", out2.String())
	}
}
