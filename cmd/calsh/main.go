// Command calsh is an interactive shell for the calendar system: Postquel
// statements run against an in-memory database, and dot-commands expose the
// calendar algebra, parse trees (Figures 2-3), evaluation plans, the
// CALENDARS catalog (Figure 1) and a virtual-time DBCRON (Figure 4).
//
// Usage:
//
//	calsh            # interactive
//	calsh < script   # batch
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"calsys"
)

const usage = `calsh — calendar & temporal-rule shell

Postquel statements (create / append / retrieve / replace / delete /
define calendar / define rule / define temporal rule / drop / show)
run directly. Dot-commands:

  .cal <expr> [<from> <to>]   evaluate a calendar expression (dates ISO)
  .script <script>            run a calendar script ({...})
  .tree <expr>                parse tree, initial and factorized
  .plan <expr> [<from> <to>]  compiled evaluation plan
  .fig1 <name>                CALENDARS catalog row (Figure 1)
  .vet <name|expr|script>     static analysis (CV001-CV013 diagnostics)
  .vetfleet                   catalog-wide dedup: equivalent calendars, rules firing identically
  .now                        current virtual date
  .advance <days>             advance the virtual clock, driving DBCRON
  .cron <seconds>             start DBCRON with probe period T
  .deadletter                 list RULE-DEADLETTER (firings that exhausted retries)
  .save <file>                write a database snapshot (atomic: tmp+fsync+rename)
  .load <file>                replace the database from a snapshot
  .help                       this text
  .quit                       exit
`

type shell struct {
	sys   *calsys.System
	clock *calsys.VirtualClock
	cron  *calsys.DBCron
	out   *bufio.Writer
}

func main() {
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		fmt.Fprintln(os.Stderr, "calsh:", err)
		os.Exit(1)
	}
	sh := &shell{sys: sys, clock: clock, out: bufio.NewWriter(os.Stdout)}
	defer sh.out.Flush()

	interactive := isTerminal()
	if interactive {
		fmt.Fprintln(sh.out, "calsh — type .help for help")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Fprint(sh.out, "calsh> ")
			sh.out.Flush()
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if line == ".quit" || line == ".exit" {
			return
		}
		if err := sh.dispatch(line); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
		sh.out.Flush()
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

func (sh *shell) dispatch(line string) error {
	// `:vet` is accepted as an alias of `.vet` (diagnostics codes read
	// naturally after a colon).
	if !strings.HasPrefix(line, ".") && !strings.HasPrefix(line, ":vet") {
		results, err := sh.sys.Exec(line)
		for _, r := range results {
			fmt.Fprintln(sh.out, r.String())
		}
		return err
	}
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case ".help":
		fmt.Fprint(sh.out, usage)
		return nil
	case ".cal":
		expr, from, to, err := sh.exprWindow(rest)
		if err != nil {
			return err
		}
		cal, err := sh.sys.EvalCalendar(expr, from, to)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%s  (granularity %v, order %d)\n", cal, cal.Granularity(), cal.Order())
		return nil
	case ".script":
		if rest == "" {
			return fmt.Errorf("usage: .script { ... }")
		}
		from, to := sh.defaultWindow()
		v, err := sh.sys.RunCalendarScript(rest, from, to)
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, v.String())
		return nil
	case ".tree":
		if rest == "" {
			return fmt.Errorf("usage: .tree <expr>")
		}
		initial, factored, err := sh.sys.ParseTree(rest)
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "INITIAL\n%s\nFACTORIZED\n%s", initial, factored)
		return nil
	case ".plan":
		expr, from, to, err := sh.exprWindow(rest)
		if err != nil {
			return err
		}
		p, err := sh.sys.CompileCalendar(expr, from, to)
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, p.String())
		return nil
	case ".fig1":
		if rest == "" {
			return fmt.Errorf("usage: .fig1 <calendar>")
		}
		row, err := sh.sys.CalendarFigureRow(rest)
		if err != nil {
			return err
		}
		fmt.Fprint(sh.out, row)
		return nil
	case ".vet", ":vet":
		if rest == "" {
			return fmt.Errorf("usage: .vet <calendar-name | expression | script>")
		}
		return sh.vet(rest)
	case ".vetfleet", ":vetfleet":
		return sh.vetFleet()
	case ".now":
		fmt.Fprintln(sh.out, sh.sys.Today())
		return nil
	case ".advance":
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("usage: .advance <days>")
		}
		for i := int64(0); i < n; i++ {
			now := sh.clock.Advance(calsys.SecondsPerDay)
			if sh.cron != nil {
				fired, err := sh.cron.AdvanceTo(now)
				if err != nil {
					return err
				}
				for _, f := range fired {
					fmt.Fprintf(sh.out, "fired %s at %s\n", f.Rule, sh.sys.Chron().CivilOf(f.At))
				}
			}
		}
		fmt.Fprintln(sh.out, "now", sh.sys.Today())
		return nil
	case ".save":
		if rest == "" {
			return fmt.Errorf("usage: .save <file>")
		}
		if err := sh.sys.SaveSnapshotFile(rest); err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "saved snapshot to %s\n", rest)
		return nil
	case ".load":
		if rest == "" {
			return fmt.Errorf("usage: .load <file>")
		}
		f, err := os.Open(rest)
		if err != nil {
			return err
		}
		defer f.Close()
		restored, err := calsys.OpenSnapshot(f, calsys.WithClock(sh.clock))
		if err != nil {
			return err
		}
		sh.sys = restored
		sh.cron = nil
		if orphans := restored.OrphanedRules(); len(orphans) > 0 {
			fmt.Fprintf(sh.out, "loaded %s; rules needing reattachment: %v\n", rest, orphans)
		} else {
			fmt.Fprintf(sh.out, "loaded %s\n", rest)
		}
		return nil
	case ".cron":
		T, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || T <= 0 {
			return fmt.Errorf("usage: .cron <seconds>")
		}
		cron, err := sh.sys.StartDBCron(T)
		if err != nil {
			return err
		}
		sh.cron = cron
		fmt.Fprintf(sh.out, "dbcron started, probe period %d s\n", T)
		return nil
	case ".deadletter":
		dls, err := sh.sys.DeadLetters()
		if err != nil {
			return err
		}
		if len(dls) == 0 {
			fmt.Fprintln(sh.out, "RULE-DEADLETTER is empty")
			return nil
		}
		ch := sh.sys.Chron()
		for _, dl := range dls {
			fmt.Fprintf(sh.out, "%-16s fired_at %s  attempts %d  dead_at %s  %s\n",
				dl.Rule, ch.CivilOf(dl.At), dl.Attempts, ch.CivilOf(dl.DeadAt), dl.LastError)
		}
		return nil
	}
	return fmt.Errorf("unknown command %s (try .help)", cmd)
}

// exprWindow splits ".cal expr [from to]" arguments; trailing ISO dates set
// the window.
// vet runs the calvet static analyzer: over the stored derivation when the
// argument names a defined calendar, over the source itself otherwise.
func (sh *shell) vet(rest string) error {
	var ds calsys.VetDiags
	if _, ok := sh.sys.CalendarEntryOf(rest); ok {
		var err error
		ds, err = sh.sys.VetDefinedCalendar(rest)
		if err != nil {
			return err
		}
	} else {
		ds = sh.sys.VetCalendar("", rest)
	}
	if len(ds) == 0 {
		fmt.Fprintln(sh.out, "ok: no diagnostics")
		return nil
	}
	for _, d := range ds {
		fmt.Fprintln(sh.out, d.String())
	}
	return nil
}

// vetFleet prints the catalog-wide equivalence classes and the temporal
// rules that provably fire on identical instants.
func (sh *shell) vetFleet() error {
	classes := sh.sys.VetCatalog()
	for _, c := range classes {
		fmt.Fprintln(sh.out, "calendars:", c.String())
	}
	groups := sh.sys.VetRuleFleet()
	for _, g := range groups {
		fmt.Fprintln(sh.out, "rules:", g.String())
	}
	if len(classes) == 0 && len(groups) == 0 {
		fmt.Fprintln(sh.out, "ok: no equivalent definitions")
	}
	return nil
}

func (sh *shell) exprWindow(rest string) (string, calsys.Civil, calsys.Civil, error) {
	if rest == "" {
		return "", calsys.Civil{}, calsys.Civil{}, fmt.Errorf("missing expression")
	}
	fields := strings.Fields(rest)
	if len(fields) >= 3 {
		from, err1 := calsys.ParseDate(fields[len(fields)-2])
		to, err2 := calsys.ParseDate(fields[len(fields)-1])
		if err1 == nil && err2 == nil {
			return strings.Join(fields[:len(fields)-2], " "), from, to, nil
		}
	}
	from, to := sh.defaultWindow()
	return rest, from, to, nil
}

// defaultWindow is the year around the current virtual date.
func (sh *shell) defaultWindow() (calsys.Civil, calsys.Civil) {
	today := sh.sys.Today()
	return calsys.Civil{Year: today.Year, Month: 1, Day: 1},
		calsys.Civil{Year: today.Year, Month: 12, Day: 31}
}
