// Command dbcrond demonstrates the DBCRON daemon of Figure 4: it declares a
// set of temporal rules (every Tuesday, every month end, every quarter end,
// daily business days) and simulates their firings over a span of virtual
// days, printing the trigger log and the daemon's statistics.
//
// With -journal and -snapshot the daemon is durable: firings are recorded
// in a write-ahead journal, the database is checkpointed periodically, and
// a -crash-after run can be resumed with -recover, which replays the
// journal, fast-forwards stale RULE-TIME rows, and catches up missed
// triggers under the selected -policy (fireall | firelast | skip).
//
// Usage:
//
//	dbcrond [-days N] [-T seconds] [-start YYYY-MM-DD] [-q]
//	        [-journal FILE] [-snapshot FILE] [-policy fireall]
//	        [-checkpoint-days N] [-crash-after N] [-recover]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"calsys"
)

// errCrashed reports a -crash-after kill; main exits nonzero without the
// clean-shutdown path.
var errCrashed = fmt.Errorf("simulated crash (restart with -recover)")

type config struct {
	days, T        int64
	start          string
	quiet          bool
	journalPath    string
	snapshotPath   string
	policy         string
	checkpointDays int64
	crashAfter     int64
	doRecover      bool
}

func main() {
	var cfg config
	flag.Int64Var(&cfg.days, "days", 120, "virtual days to simulate")
	flag.Int64Var(&cfg.T, "T", calsys.SecondsPerDay, "DBCRON probe period in seconds")
	flag.StringVar(&cfg.start, "start", "1993-01-01", "simulation start date")
	flag.BoolVar(&cfg.quiet, "q", false, "suppress the per-firing log")
	flag.StringVar(&cfg.journalPath, "journal", "", "write-ahead firing journal (enables the durable daemon)")
	flag.StringVar(&cfg.snapshotPath, "snapshot", "", "database snapshot file (checkpointed periodically)")
	flag.StringVar(&cfg.policy, "policy", "fireall", "catch-up policy on recovery: fireall | firelast | skip")
	flag.Int64Var(&cfg.checkpointDays, "checkpoint-days", 7, "virtual days between snapshot checkpoints")
	flag.Int64Var(&cfg.crashAfter, "crash-after", 0, "simulate a crash after N firings (0 = never)")
	flag.BoolVar(&cfg.doRecover, "recover", false, "recover from -snapshot and -journal before simulating")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dbcrond:", err)
		os.Exit(1)
	}
}

var ruleDefs = []struct{ name, expr string }{
	{"every_tuesday", "[2]/DAYS:during:WEEKS"},
	{"month_end", "[n]/DAYS:during:MONTHS"},
	{"quarter_end", "[n]/DAYS:during:caloperate(MONTHS, 3)"},
	{"business_day", "Weekdays"},
}

func run(cfg config) error {
	startDate, err := calsys.ParseDate(cfg.start)
	if err != nil {
		return err
	}
	policy, err := calsys.ParseCatchUpPolicy(cfg.policy)
	if err != nil {
		return err
	}
	durable := cfg.journalPath != ""
	if cfg.doRecover && (!durable || cfg.snapshotPath == "") {
		return fmt.Errorf("-recover needs both -journal and -snapshot")
	}
	if cfg.crashAfter > 0 && !durable {
		return fmt.Errorf("-crash-after needs -journal (there is nothing to recover from otherwise)")
	}

	clock := calsys.NewVirtualClock(0)
	counts := map[string]int{}
	var fired int64
	crashed := false

	var sys *calsys.System
	if cfg.doRecover {
		sys, err = calsys.OpenSnapshotFile(cfg.snapshotPath, calsys.WithClock(clock))
		if err != nil {
			return fmt.Errorf("loading checkpoint: %w", err)
		}
	} else {
		sys, err = calsys.Open(calsys.WithClock(clock))
		if err != nil {
			return err
		}
	}
	clock.Set(sys.SecondsOf(startDate))

	action := func(name string) func(tx *calsys.Txn, at int64) error {
		return func(tx *calsys.Txn, at int64) error {
			counts[name]++
			fired++
			if !cfg.quiet {
				fmt.Printf("%s  fired %-14s\n", sys.Chron().CivilOf(at), name)
			}
			return nil
		}
	}

	if cfg.doRecover {
		// Actions are code: re-bind them to the restored catalog rows,
		// keeping overdue triggers overdue so recovery can catch them up.
		for _, rd := range ruleDefs {
			if err := sys.ReattachRule(rd.name, action(rd.name)); err != nil {
				return fmt.Errorf("reattaching %s: %w", rd.name, err)
			}
		}
	} else {
		if err := sys.DefineCalendar("Weekdays", "[1,2,3,4,5]/DAYS:during:WEEKS", calsys.Day); err != nil {
			return err
		}
		for _, rd := range ruleDefs {
			if err := sys.OnCalendar(rd.name, rd.expr, action(rd.name)); err != nil {
				return err
			}
		}
	}

	var cron *calsys.DBCron
	if durable {
		jnl, err := calsys.OpenFiringJournal(cfg.journalPath)
		if err != nil {
			return err
		}
		defer jnl.Close()
		// -crash-after arms a kill in the ack window of the Nth firing: the
		// firing's transaction commits, the journal ack is lost, and the
		// recovery run must deduplicate it instead of firing twice.
		var inj *calsys.FaultInjector
		if cfg.crashAfter > 0 {
			inj = calsys.NewFaultInjector(1)
			inj.CrashAt(calsys.SiteCronAck, int(cfg.crashAfter))
		}
		cron, err = sys.StartDurableDBCron(cfg.T, calsys.CronOptions{
			Journal: jnl,
			CatchUp: policy,
			Faults:  inj,
		})
		if err != nil {
			return err
		}
		if cfg.doRecover {
			rep, err := cron.Recover(clock.Now())
			if err != nil {
				return err
			}
			fmt.Printf("recovered: %s\n", rep)
		}
		defer func() {
			if crashed {
				return // a killed process compacts nothing
			}
			if err := jnl.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "dbcrond: compacting journal:", err)
			}
		}()
	} else {
		cron, err = sys.StartDBCron(cfg.T)
		if err != nil {
			return err
		}
	}

	checkpoint := func() error {
		if cfg.snapshotPath == "" {
			return nil
		}
		return sys.SaveSnapshotFile(cfg.snapshotPath)
	}

	// Graceful shutdown: on SIGINT/SIGTERM drain everything already due,
	// checkpoint, and exit cleanly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	for i := int64(0); i < cfg.days; i++ {
		select {
		case s := <-sig:
			fmt.Printf("\n%v: draining and checkpointing\n", s)
			if _, err := cron.AdvanceTo(clock.Now()); err != nil {
				return err
			}
			return checkpoint()
		default:
		}
		if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
			if calsys.IsInjectedCrash(err) {
				// Die like a killed process: no drain, no checkpoint, no
				// journal compaction — only the journal and the last
				// checkpoint survive for the -recover run.
				fmt.Printf("\ndbcrond: simulated crash after %d firings — journal retained at %s\n",
					fired, cfg.journalPath)
				fmt.Println("dbcrond: restart with -recover to resume")
				crashed = true
				return errCrashed
			}
			return err
		}
		if cfg.snapshotPath != "" && cfg.checkpointDays > 0 && (i+1)%cfg.checkpointDays == 0 {
			if err := checkpoint(); err != nil {
				return err
			}
		}
	}

	// Clean shutdown: drain, checkpoint, report.
	if _, err := cron.AdvanceTo(clock.Now()); err != nil {
		return err
	}
	if err := checkpoint(); err != nil {
		return err
	}
	total, late := cron.Stats()
	fmt.Printf("\nsimulated %d days from %s with T = %ds\n", cfg.days, startDate, cfg.T)
	for _, rd := range ruleDefs {
		fmt.Printf("  %-14s fired %4d times\n", rd.name, counts[rd.name])
	}
	fmt.Printf("  total firings %d, cumulative probe lateness %ds\n", total, late)
	if dls, err := sys.DeadLetters(); err == nil && len(dls) > 0 {
		fmt.Printf("  RULE-DEADLETTER holds %d firings (query with calsh .deadletter)\n", len(dls))
	}
	return nil
}
