// Command dbcrond demonstrates the DBCRON daemon of Figure 4: it declares a
// set of temporal rules (every Tuesday, every month end, every quarter end,
// daily business days) and simulates their firings over a span of virtual
// days, printing the trigger log and the daemon's statistics.
//
// Usage:
//
//	dbcrond [-days N] [-T seconds] [-start YYYY-MM-DD] [-q]
package main

import (
	"flag"
	"fmt"
	"os"

	"calsys"
)

func main() {
	days := flag.Int64("days", 120, "virtual days to simulate")
	T := flag.Int64("T", calsys.SecondsPerDay, "DBCRON probe period in seconds")
	start := flag.String("start", "1993-01-01", "simulation start date")
	quiet := flag.Bool("q", false, "suppress the per-firing log")
	flag.Parse()

	if err := run(*days, *T, *start, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "dbcrond:", err)
		os.Exit(1)
	}
}

func run(days, T int64, start string, quiet bool) error {
	startDate, err := calsys.ParseDate(start)
	if err != nil {
		return err
	}
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		return err
	}
	clock.Set(sys.SecondsOf(startDate))

	// Weekday business days (no holiday list in the demo).
	if err := sys.DefineCalendar("Weekdays", "[1,2,3,4,5]/DAYS:during:WEEKS", calsys.Day); err != nil {
		return err
	}
	ruleDefs := []struct{ name, expr string }{
		{"every_tuesday", "[2]/DAYS:during:WEEKS"},
		{"month_end", "[n]/DAYS:during:MONTHS"},
		{"quarter_end", "[n]/DAYS:during:caloperate(MONTHS, 3)"},
		{"business_day", "Weekdays"},
	}
	counts := map[string]int{}
	for _, rd := range ruleDefs {
		name := rd.name
		if err := sys.OnCalendar(name, rd.expr, func(tx *calsys.Txn, at int64) error {
			counts[name]++
			if !quiet {
				fmt.Printf("%s  fired %-14s\n", sys.Chron().CivilOf(at), name)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	cron, err := sys.StartDBCron(T)
	if err != nil {
		return err
	}
	for i := int64(0); i < days; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
			return err
		}
	}

	fired, late := cron.Stats()
	fmt.Printf("\nsimulated %d days from %s with T = %ds\n", days, startDate, T)
	for _, rd := range ruleDefs {
		fmt.Printf("  %-14s fired %4d times\n", rd.name, counts[rd.name])
	}
	fmt.Printf("  total firings %d, cumulative probe lateness %ds\n", fired, late)
	return nil
}
