// Command dbcrond demonstrates the DBCRON daemon of Figure 4: it declares a
// set of temporal rules (every Tuesday, every month end, every quarter end,
// daily business days) and simulates their firings over a span of virtual
// days, printing the trigger log and the daemon's statistics.
//
// With -journal and -snapshot the daemon is durable: firings are recorded
// in a write-ahead journal, the database is checkpointed periodically, and
// a -crash-after run can be resumed with -recover, which replays the
// journal, fast-forwards stale RULE-TIME rows, and catches up missed
// triggers under the selected -policy (fireall | firelast | skip).
//
// With -rules the daemon instead runs the scheduling-at-scale demo: it
// batch-defines N synthetic rules over -distinct calendar expressions and
// times the probe loop, showing the shared-plan fan-out keeping the cost per
// probe day proportional to the number of distinct expressions, not rules.
//
// With -workers the daemon runs the sharded-fleet demo: rules are
// hash-partitioned into -shards shards owned under TTL'd, epoch-fenced
// leases split across -workers workers. -kill-after SIGKILLs one
// shard-owning worker mid-day; its leases expire, the survivors steal its
// shards, merge its journals and catch up — the run then verifies that
// every sentinel rule fired exactly once per due instant and that no rule
// lost progress. SIGTERM instead releases every lease gracefully, so a
// clean shutdown never opens a steal window.
//
// -pprof serves net/http/pprof on the given address for live CPU and heap
// profiles of a running daemon (see also `make profile`).
//
// Usage:
//
//	dbcrond [-days N] [-T seconds] [-start YYYY-MM-DD] [-q]
//	        [-journal FILE] [-snapshot FILE] [-policy fireall]
//	        [-checkpoint-days N] [-crash-after N] [-recover]
//	        [-rules N [-distinct K]] [-pprof addr] [-mutexprofile N]
//	        [-workers N [-shards M] [-lease-ttl secs] [-kill-after day]
//	         [-journal-dir DIR]]
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"calsys"
)

// errCrashed reports a -crash-after kill; main exits nonzero without the
// clean-shutdown path.
var errCrashed = fmt.Errorf("simulated crash (restart with -recover)")

type config struct {
	days, T        int64
	start          string
	quiet          bool
	journalPath    string
	snapshotPath   string
	policy         string
	checkpointDays int64
	crashAfter     int64
	doRecover      bool
	rules          int64
	distinct       int64
	pprofAddr      string
	mutexFrac      int
	workers        int64
	shards         int64
	leaseTTL       int64
	killAfter      int64
	journalDir     string
}

func main() {
	var cfg config
	flag.Int64Var(&cfg.days, "days", 120, "virtual days to simulate")
	flag.Int64Var(&cfg.T, "T", calsys.SecondsPerDay, "DBCRON probe period in seconds")
	flag.StringVar(&cfg.start, "start", "1993-01-01", "simulation start date")
	flag.BoolVar(&cfg.quiet, "q", false, "suppress the per-firing log")
	flag.StringVar(&cfg.journalPath, "journal", "", "write-ahead firing journal (enables the durable daemon)")
	flag.StringVar(&cfg.snapshotPath, "snapshot", "", "database snapshot file (checkpointed periodically)")
	flag.StringVar(&cfg.policy, "policy", "fireall", "catch-up policy on recovery: fireall | firelast | skip")
	flag.Int64Var(&cfg.checkpointDays, "checkpoint-days", 7, "virtual days between snapshot checkpoints")
	flag.Int64Var(&cfg.crashAfter, "crash-after", 0, "simulate a crash after N firings (0 = never)")
	flag.BoolVar(&cfg.doRecover, "recover", false, "recover from -snapshot and -journal before simulating")
	flag.Int64Var(&cfg.rules, "rules", 0, "scale demo: define N synthetic rules instead of the named set")
	flag.Int64Var(&cfg.distinct, "distinct", 50, "scale demo: distinct calendar expressions across -rules")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.IntVar(&cfg.mutexFrac, "mutexprofile", 0, "sample 1/N mutex contention events for /debug/pprof/mutex (0 = off)")
	flag.Int64Var(&cfg.workers, "workers", 0, "sharded-fleet demo: run N lease-holding workers")
	flag.Int64Var(&cfg.shards, "shards", 8, "sharded-fleet demo: hash-partition rules into M shards")
	flag.Int64Var(&cfg.leaseTTL, "lease-ttl", calsys.SecondsPerDay*3/2, "sharded-fleet demo: lease TTL in seconds")
	flag.Int64Var(&cfg.killAfter, "kill-after", 0, "sharded-fleet demo: SIGKILL one shard owner after N virtual days (0 = never)")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "sharded-fleet demo: directory for per-shard journals (default: a temp dir)")
	flag.Parse()

	if cfg.mutexFrac > 0 {
		runtime.SetMutexProfileFraction(cfg.mutexFrac)
	}
	if cfg.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dbcrond: pprof server:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", cfg.pprofAddr)
	}

	if cfg.workers > 0 {
		if cfg.journalPath != "" || cfg.doRecover || cfg.crashAfter > 0 {
			fmt.Fprintln(os.Stderr, "dbcrond: -workers is the sharded-fleet demo; it does not combine with -journal/-recover/-crash-after")
			os.Exit(1)
		}
		if err := runFleetSharded(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dbcrond:", err)
			os.Exit(1)
		}
		return
	}

	if cfg.rules > 0 {
		if cfg.journalPath != "" || cfg.doRecover || cfg.crashAfter > 0 {
			fmt.Fprintln(os.Stderr, "dbcrond: -rules is a scale demo; it does not combine with -journal/-recover/-crash-after")
			os.Exit(1)
		}
		if err := runFleet(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dbcrond:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dbcrond:", err)
		os.Exit(1)
	}
}

var ruleDefs = []struct{ name, expr string }{
	{"every_tuesday", "[2]/DAYS:during:WEEKS"},
	{"month_end", "[n]/DAYS:during:MONTHS"},
	{"quarter_end", "[n]/DAYS:during:caloperate(MONTHS, 3)"},
	{"business_day", "Weekdays"},
}

func run(cfg config) error {
	startDate, err := calsys.ParseDate(cfg.start)
	if err != nil {
		return err
	}
	policy, err := calsys.ParseCatchUpPolicy(cfg.policy)
	if err != nil {
		return err
	}
	durable := cfg.journalPath != ""
	if cfg.doRecover && (!durable || cfg.snapshotPath == "") {
		return fmt.Errorf("-recover needs both -journal and -snapshot")
	}
	if cfg.crashAfter > 0 && !durable {
		return fmt.Errorf("-crash-after needs -journal (there is nothing to recover from otherwise)")
	}

	clock := calsys.NewVirtualClock(0)
	counts := map[string]int{}
	var fired int64
	crashed := false

	var sys *calsys.System
	if cfg.doRecover {
		sys, err = calsys.OpenSnapshotFile(cfg.snapshotPath, calsys.WithClock(clock))
		if err != nil {
			return fmt.Errorf("loading checkpoint: %w", err)
		}
	} else {
		sys, err = calsys.Open(calsys.WithClock(clock))
		if err != nil {
			return err
		}
	}
	clock.Set(sys.SecondsOf(startDate))

	action := func(name string) func(tx *calsys.Txn, at int64) error {
		return func(tx *calsys.Txn, at int64) error {
			counts[name]++
			fired++
			if !cfg.quiet {
				fmt.Printf("%s  fired %-14s\n", sys.Chron().CivilOf(at), name)
			}
			return nil
		}
	}

	if cfg.doRecover {
		// Actions are code: re-bind them to the restored catalog rows,
		// keeping overdue triggers overdue so recovery can catch them up.
		for _, rd := range ruleDefs {
			if err := sys.ReattachRule(rd.name, action(rd.name)); err != nil {
				return fmt.Errorf("reattaching %s: %w", rd.name, err)
			}
		}
	} else {
		if err := sys.DefineCalendar("Weekdays", "[1,2,3,4,5]/DAYS:during:WEEKS", calsys.Day); err != nil {
			return err
		}
		for _, rd := range ruleDefs {
			if err := sys.OnCalendar(rd.name, rd.expr, action(rd.name)); err != nil {
				return err
			}
		}
	}

	var cron *calsys.DBCron
	if durable {
		jnl, err := calsys.OpenFiringJournal(cfg.journalPath)
		if err != nil {
			return err
		}
		defer jnl.Close()
		// -crash-after arms a kill in the ack window of the Nth firing: the
		// firing's transaction commits, the journal ack is lost, and the
		// recovery run must deduplicate it instead of firing twice.
		var inj *calsys.FaultInjector
		if cfg.crashAfter > 0 {
			inj = calsys.NewFaultInjector(1)
			inj.CrashAt(calsys.SiteCronAck, int(cfg.crashAfter))
		}
		cron, err = sys.StartDurableDBCron(cfg.T, calsys.CronOptions{
			Journal: jnl,
			CatchUp: policy,
			Faults:  inj,
		})
		if err != nil {
			return err
		}
		if cfg.doRecover {
			rep, err := cron.Recover(clock.Now())
			if err != nil {
				return err
			}
			fmt.Printf("recovered: %s\n", rep)
		}
		defer func() {
			if crashed {
				return // a killed process compacts nothing
			}
			if err := jnl.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "dbcrond: compacting journal:", err)
			}
		}()
	} else {
		cron, err = sys.StartDBCron(cfg.T)
		if err != nil {
			return err
		}
	}

	checkpoint := func() error {
		if cfg.snapshotPath == "" {
			return nil
		}
		return sys.SaveSnapshotFile(cfg.snapshotPath)
	}

	// Graceful shutdown: on SIGINT/SIGTERM drain everything already due,
	// checkpoint, and exit cleanly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	for i := int64(0); i < cfg.days; i++ {
		select {
		case s := <-sig:
			fmt.Printf("\n%v: draining and checkpointing\n", s)
			if _, err := cron.AdvanceTo(clock.Now()); err != nil {
				return err
			}
			return checkpoint()
		default:
		}
		if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
			if calsys.IsInjectedCrash(err) {
				// Die like a killed process: no drain, no checkpoint, no
				// journal compaction — only the journal and the last
				// checkpoint survive for the -recover run.
				fmt.Printf("\ndbcrond: simulated crash after %d firings — journal retained at %s\n",
					fired, cfg.journalPath)
				fmt.Println("dbcrond: restart with -recover to resume")
				crashed = true
				return errCrashed
			}
			return err
		}
		if cfg.snapshotPath != "" && cfg.checkpointDays > 0 && (i+1)%cfg.checkpointDays == 0 {
			if err := checkpoint(); err != nil {
				return err
			}
		}
	}

	// Clean shutdown: drain, checkpoint, report.
	if _, err := cron.AdvanceTo(clock.Now()); err != nil {
		return err
	}
	if err := checkpoint(); err != nil {
		return err
	}
	total, late := cron.Stats()
	fmt.Printf("\nsimulated %d days from %s with T = %ds\n", cfg.days, startDate, cfg.T)
	for _, rd := range ruleDefs {
		fmt.Printf("  %-14s fired %4d times\n", rd.name, counts[rd.name])
	}
	fmt.Printf("  total firings %d, cumulative probe lateness %ds\n", total, late)
	if dls, err := sys.DeadLetters(); err == nil && len(dls) > 0 {
		fmt.Printf("  RULE-DEADLETTER holds %d firings (query with calsh .deadletter)\n", len(dls))
	}
	return nil
}

// fleetExprs returns `distinct` calendar expressions for the scale demo:
// mostly monthly day picks, plus weekly and week-of-month shapes — the same
// mix BenchmarkProbe100kRules uses.
func fleetExprs(distinct int64) []string {
	exprs := make([]string, 0, distinct)
	for k := 1; int64(len(exprs)) < distinct && k <= 28; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d]/DAYS:during:MONTHS", k))
	}
	for k := 1; int64(len(exprs)) < distinct && k <= 7; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d]/DAYS:during:WEEKS", k))
	}
	for k := 1; int64(len(exprs)) < distinct && k <= 4; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d]/WEEKS:overlaps:MONTHS", k))
	}
	for k := 1; int64(len(exprs)) < distinct; k++ {
		exprs = append(exprs, fmt.Sprintf("[%d,%d]/DAYS:during:MONTHS", k, k+14))
	}
	return exprs
}

// runFleet is the scheduling-at-scale demo: batch-define -rules temporal
// rules over -distinct expressions, then time the probe loop. Rules sharing
// an expression share one plan group and one next-instant computation per
// firing, so the probe cost tracks the number of distinct expressions.
func runFleet(cfg config) error {
	startDate, err := calsys.ParseDate(cfg.start)
	if err != nil {
		return err
	}
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		return err
	}
	clock.Set(sys.SecondsOf(startDate))

	var fired int64
	count := calsys.FuncAction{Name: "count", Fn: func(*calsys.Txn, *calsys.Event, int64) error {
		fired++
		return nil
	}}
	exprs := fleetExprs(cfg.distinct)
	defs := make([]calsys.TemporalRuleDef, cfg.rules)
	for i := range defs {
		defs[i] = calsys.TemporalRuleDef{
			Name:    fmt.Sprintf("r%d", i),
			CalExpr: exprs[i%len(exprs)],
			Action:  count,
		}
	}
	t0 := time.Now()
	if err := sys.OnCalendars(defs); err != nil {
		return err
	}
	defined := time.Since(t0)

	cron, err := sys.StartDBCron(cfg.T)
	if err != nil {
		return err
	}
	t0 = time.Now()
	for i := int64(0); i < cfg.days; i++ {
		if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
			return err
		}
	}
	probed := time.Since(t0)
	groups, probes := sys.Rules().PlanGroupStats()
	fmt.Printf("defined %d rules over %d expressions in %v\n",
		cfg.rules, len(exprs), defined.Round(time.Millisecond))
	fmt.Printf("probed %d days in %v (%v per day), %d firings\n",
		cfg.days, probed.Round(time.Millisecond),
		(probed / time.Duration(cfg.days)).Round(time.Microsecond), fired)
	fmt.Printf("plan groups: %d, windowed evaluations across the whole run: %d\n", groups, probes)
	return nil
}

// fleetSentinels is the count of exact-verification daily rules mixed into
// the sharded-fleet population.
const fleetSentinels = 8

// runFleetSharded is the sharded-fleet demo: -rules synthetic rules plus a
// handful of daily sentinel rules are hash-partitioned into -shards shards,
// owned under epoch-fenced leases split across -workers workers. With
// -kill-after one shard-owning worker is SIGKILLed mid-day; the survivors
// steal its expired leases, merge its journals and catch up. The run then
// proves the robustness claim on the sentinels — every due instant fired
// exactly once, no instant lost, none doubled — and that no synthetic rule
// lost progress across the kill.
func runFleetSharded(cfg config) error {
	startDate, err := calsys.ParseDate(cfg.start)
	if err != nil {
		return err
	}
	policy, err := calsys.ParseCatchUpPolicy(cfg.policy)
	if err != nil {
		return err
	}
	dir := cfg.journalDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "dbcrond-fleet-*"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	clock := calsys.NewVirtualClock(0)
	sys, err := calsys.Open(calsys.WithClock(clock))
	if err != nil {
		return err
	}
	start := sys.SecondsOf(startDate)
	clock.Set(start)
	end := start + cfg.days*calsys.SecondsPerDay

	// Sentinels verify exactly-once per instant; the synthetic mix gets
	// cheap per-rule counters checked for monotonic progress across a kill.
	sentinelCounts := make([]map[int64]int, fleetSentinels)
	mixCounts := make([]int64, cfg.rules)
	defs := make([]calsys.TemporalRuleDef, 0, fleetSentinels+int(cfg.rules))
	for i := 0; i < fleetSentinels; i++ {
		sentinelCounts[i] = map[int64]int{}
		m := sentinelCounts[i]
		defs = append(defs, calsys.TemporalRuleDef{
			Name:    fmt.Sprintf("sentinel-%d", i),
			CalExpr: "DAYS",
			Action: calsys.FuncAction{Name: "sentinel", Fn: func(_ *calsys.Txn, _ *calsys.Event, at int64) error {
				m[at]++
				return nil
			}},
		})
	}
	exprs := fleetExprs(cfg.distinct)
	for i := int64(0); i < cfg.rules; i++ {
		i := i
		defs = append(defs, calsys.TemporalRuleDef{
			Name:    fmt.Sprintf("r%d", i),
			CalExpr: exprs[i%int64(len(exprs))],
			Action: calsys.FuncAction{Name: "count", Fn: func(*calsys.Txn, *calsys.Event, int64) error {
				mixCounts[i]++
				return nil
			}},
		})
	}
	t0 := time.Now()
	if err := sys.OnCalendars(defs); err != nil {
		return err
	}
	fmt.Printf("defined %d rules (%d sentinels) across %d shards in %v\n",
		len(defs), fleetSentinels, cfg.shards, time.Since(t0).Round(time.Millisecond))

	coord := calsys.NewShardCoordinator(int(cfg.shards), cfg.leaseTTL)
	opts := calsys.ShardWorkerOptions{CatchUp: policy}
	workers := make([]*calsys.ShardWorker, cfg.workers)
	live := make([]bool, cfg.workers)
	for i := range workers {
		workers[i] = calsys.NewShardWorker(fmt.Sprintf("w%d", i), coord, sys.Rules(), cfg.T, dir, opts)
		live[i] = true
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	shutdown := func(now int64) error {
		for i, w := range workers {
			if !live[i] {
				continue
			}
			if err := w.Shutdown(now); err != nil {
				return err
			}
			live[i] = false
		}
		return nil
	}

	killAt := int64(0)
	if cfg.killAfter > 0 {
		// Mid-day, so the kill lands between probes with firings in flight
		// on the wheel.
		killAt = start + cfg.killAfter*calsys.SecondsPerDay + calsys.SecondsPerDay/2
	}
	var preKill []int64
	killed := -1
	t0 = time.Now()
	step := cfg.T / 4
	if step < 1 {
		step = 1
	}
	for now := start; now <= end; now += step {
		select {
		case s := <-sig:
			fmt.Printf("\n%v: releasing every lease and exiting\n", s)
			return shutdown(now)
		default:
		}
		clock.Set(now)
		if killed < 0 && killAt > 0 && now >= killAt {
			for i, w := range workers {
				if live[i] && len(w.Owned()) > 0 {
					// SIGKILL: no drain, no release — the journals stay on
					// disk and the leases lapse into the steal window.
					live[i] = false
					killed = i
					preKill = append([]int64(nil), mixCounts...)
					fmt.Printf("day %d: SIGKILL %s (owned shards %v); leases expire in %ds\n",
						(now-start)/calsys.SecondsPerDay, w.Name(), w.Owned(), cfg.leaseTTL)
					break
				}
			}
		}
		for i, w := range workers {
			if !live[i] {
				continue
			}
			if err := w.Tick(now); err != nil {
				return fmt.Errorf("%s: %w", w.Name(), err)
			}
		}
	}
	elapsed := time.Since(t0)

	// Report and verify.
	fmt.Printf("\nsimulated %d days, %d workers, %d shards, T = %ds, lease TTL %ds in %v\n",
		cfg.days, cfg.workers, cfg.shards, cfg.T, cfg.leaseTTL, elapsed.Round(time.Millisecond))
	cs := coord.Stats()
	fmt.Printf("leases: %d grants (%d steals), %d renewals, %d releases\n",
		cs.Grants, cs.Steals, cs.Renewals, cs.Releases)
	var fleetFired int64
	for i, w := range workers {
		st := w.Stats()
		fleetFired += st.Fired
		state := "live"
		if i == killed {
			state = "killed"
		} else if !live[i] {
			state = "stopped"
		}
		fmt.Printf("  %-4s %-7s owned %d  adopted %d  released %d  lost %d  fenced %d  fired %d\n",
			w.Name(), state, st.Owned, st.Adopted, st.Released, st.Lost, st.Fenced, st.Fired)
	}

	bad := 0
	for i, m := range sentinelCounts {
		for day := int64(1); day <= cfg.days; day++ {
			at := start + day*calsys.SecondsPerDay
			if m[at] != 1 {
				fmt.Printf("VIOLATION: sentinel-%d at day %d fired %d times, want exactly 1\n", i, day, m[at])
				bad++
			}
		}
	}
	if killed >= 0 {
		if cs.Steals == 0 {
			fmt.Println("VIOLATION: a worker was killed but no lease was stolen")
			bad++
		}
		for i := range mixCounts {
			if mixCounts[i] < preKill[i] {
				bad++
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("exactly-once verification failed: %d violations", bad)
	}
	fmt.Printf("verified: %d sentinel instants fired exactly once; %d total firings, no rule lost progress\n",
		fleetSentinels*int(cfg.days), fleetFired)
	return shutdown(end)
}
