package main

import "testing"

func TestRunSimulation(t *testing.T) {
	if err := run(35, 86400, "1993-01-01", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(5, 86400, "not a date", true); err == nil {
		t.Error("bad start date should fail")
	}
	if err := run(5, 0, "1993-01-01", true); err == nil {
		t.Error("zero probe period should fail")
	}
}
