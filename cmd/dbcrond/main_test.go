package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSimulation(t *testing.T) {
	if err := run(config{days: 35, T: 86400, start: "1993-01-01", quiet: true, policy: "fireall", checkpointDays: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	base := config{days: 5, T: 86400, start: "1993-01-01", quiet: true, policy: "fireall"}
	bad := base
	bad.start = "not a date"
	if err := run(bad); err == nil {
		t.Error("bad start date should fail")
	}
	bad = base
	bad.T = 0
	if err := run(bad); err == nil {
		t.Error("zero probe period should fail")
	}
	bad = base
	bad.policy = "yolo"
	if err := run(bad); err == nil {
		t.Error("bad policy should fail")
	}
	bad = base
	bad.doRecover = true
	if err := run(bad); err == nil {
		t.Error("-recover without -journal/-snapshot should fail")
	}
	bad = base
	bad.crashAfter = 3
	if err := run(bad); err == nil {
		t.Error("-crash-after without -journal should fail")
	}
}

// The demo's full durability loop: run with a journal and checkpoints,
// crash mid-simulation, and recover from what survived on disk.
func TestRunCrashAndRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		days: 40, T: 86400, start: "1993-01-01", quiet: true,
		policy:         "fireall",
		journalPath:    filepath.Join(dir, "firing.journal"),
		snapshotPath:   filepath.Join(dir, "state.db"),
		checkpointDays: 7,
		crashAfter:     12,
	}
	if err := run(cfg); !errors.Is(err, errCrashed) {
		t.Fatalf("err = %v, want simulated crash", err)
	}
	for _, f := range []string{cfg.journalPath, cfg.snapshotPath} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("crash did not leave %s behind: %v", f, err)
		}
	}
	rec := cfg
	rec.crashAfter = 0
	rec.doRecover = true
	if err := run(rec); err != nil {
		t.Fatalf("recovery run: %v", err)
	}
}

// The sharded-fleet demo end to end: 3 workers split 8 shards, one is
// SIGKILLed mid-run, the survivors steal its leases and catch up, and the
// run's own exactly-once verification (sentinel instants, steal traffic,
// mix-rule progress) must come back clean.
func TestRunFleetShardedKillSteal(t *testing.T) {
	cfg := config{
		days: 20, T: 86400, start: "1993-01-01", quiet: true,
		policy:     "fireall",
		rules:      300,
		distinct:   20,
		workers:    3,
		shards:     8,
		leaseTTL:   86400 * 3 / 2,
		killAfter:  5,
		journalDir: t.TempDir(),
	}
	if err := runFleetSharded(cfg); err != nil {
		t.Fatal(err)
	}
}

// A fleet with no kill rebalances by voluntary release only and still
// passes verification.
func TestRunFleetShardedClean(t *testing.T) {
	cfg := config{
		days: 10, T: 86400, start: "1993-01-01", quiet: true,
		policy:     "fireall",
		rules:      100,
		distinct:   10,
		workers:    2,
		shards:     4,
		leaseTTL:   86400 * 3 / 2,
		journalDir: t.TempDir(),
	}
	if err := runFleetSharded(cfg); err != nil {
		t.Fatal(err)
	}
}
