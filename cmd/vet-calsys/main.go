// Command vet-calsys is the repository's multichecker: it runs the
// project-specific Go vet passes (tickzero, the no-zero tick convention;
// errcode, the structured error-envelope convention for HTTP handlers) over
// the packages matched by its arguments.
//
//	vet-calsys [-tests] [pattern ...]       (default pattern: ./...)
//
// Findings print as "path:line:col: [analyzer] message"; the exit status is
// 1 when any finding is reported. `make check` and CI run it alongside the
// standard go vet.
package main

import (
	"fmt"
	"io"
	"os"

	"calsys/internal/analysis"
	"calsys/internal/analysis/errcode"
	"calsys/internal/analysis/tickzero"
)

// analyzers is the multichecker's pass registry.
var analyzers = []*analysis.Analyzer{
	errcode.Analyzer,
	tickzero.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opts := analysis.Options{}
	var patterns []string
	for _, a := range args {
		switch a {
		case "-tests", "--tests":
			opts.IncludeTests = true
		case "-h", "-help", "--help":
			fmt.Fprintln(stderr, "usage: vet-calsys [-tests] [pattern ...]")
			return 2
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(patterns, analyzers, opts)
	if err != nil {
		fmt.Fprintln(stderr, "vet-calsys:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
