package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRepositoryVetsClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../../..."}, &out, &errb); code != 0 {
		t.Errorf("vet-calsys ../../...: exit %d\n%s%s", code, out.String(), errb.String())
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "calsys/internal/core/interval"

var bad = interval.Interval{Lo: 0, Hi: 5}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{dir}, &out, &errb)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[tickzero]") || !strings.Contains(out.String(), "p.go:5:") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestUsageAndBadPattern(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-help"}, &out, &errb); code != 2 {
		t.Errorf("-help exit = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/nope"}, &out, &errb); code != 2 {
		t.Errorf("bad pattern exit = %d, want 2", code)
	}
}
