// Command calserved serves the calendar system over HTTP: multi-tenant
// namespaces (token auth) with calendar/rule CRUD, vet-on-write, windowed
// expansion and next-instant queries. See internal/serve for the API.
//
// The listener supports ":0" for an ephemeral port; the chosen address is
// printed as "calserved: listening on ADDR" so harnesses (make serve-smoke)
// can scrape it. SIGINT/SIGTERM drain in-flight requests and exit 0.
//
// -pprof serves net/http/pprof on a side address; -mutexprofile N samples
// 1/N mutex contention events so /debug/pprof/mutex shows where the cache
// and registry locks actually queue under load.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"calsys/internal/chronology"
	"calsys/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "calserved: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8437", "listen address (\":0\" picks an ephemeral port)")
		adminToken   = flag.String("admin-token", os.Getenv("CALSERVED_ADMIN_TOKEN"), "admin bearer token (default $CALSERVED_ADMIN_TOKEN; generated when empty)")
		todayStr     = flag.String("today", "", "civil date tenant clocks anchor at, YYYY-MM-DD (default: the system epoch)")
		maxBody      = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "HTTP idle connection timeout")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain limit")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060)")
		mutexFrac    = flag.Int("mutexprofile", 0, "sample 1/N mutex contention events for /debug/pprof/mutex (0 = off)")
	)
	flag.Parse()

	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "calserved: pprof server:", err)
			}
		}()
		fmt.Printf("calserved: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	token := *adminToken
	if token == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("generating admin token: %v", err)
		}
		token = "admin_" + hex.EncodeToString(b[:])
		fmt.Printf("calserved: generated admin token %s\n", token)
	}

	cfg := serve.Config{AdminToken: token, MaxBodyBytes: *maxBody}
	if *todayStr != "" {
		today, err := chronology.ParseCivil(*todayStr)
		if err != nil {
			return fmt.Errorf("-today: %v", err)
		}
		cfg.Today = today
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("calserved: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		fmt.Println("calserved: draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			return fmt.Errorf("drain: %v", err)
		}
		fmt.Println("calserved: stopped")
		return nil
	}
}
