// Command experiments regenerates every figure and worked example of the
// paper (which has no numeric evaluation tables — its results are the
// algebra walkthroughs of §3.1-§3.3, the CALENDARS catalog of Figure 1, the
// parse trees of Figures 2-3, and the DBCRON architecture of Figure 4), and
// measures the performance claims behind the §3.4 optimizations.
//
// Each section is labeled with the experiment id used in DESIGN.md and
// EXPERIMENTS.md (E1-E10).
package main

import (
	"fmt"
	"log"

	"strings"

	"calsys"
	"calsys/internal/chronology"
	"calsys/internal/multical"
)

// lines counts a rendered tree's nodes (one node per line).
func lines(tree string) int {
	return len(strings.Split(strings.TrimRight(tree, "\n"), "\n"))
}

// indent prefixes each line.
func indent(text, prefix string) string {
	var b strings.Builder
	for _, ln := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		b.WriteString(prefix)
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return b.String()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := e1AlgebraExamples(); err != nil {
		return err
	}
	if err := e2GenerateCaloperate(); err != nil {
		return err
	}
	if err := e3Figure1(); err != nil {
		return err
	}
	if err := e4e5Scripts(); err != nil {
		return err
	}
	if err := e6e7ParseTrees(); err != nil {
		return err
	}
	if err := e8Windows(); err != nil {
		return err
	}
	if err := e9DBCron(); err != nil {
		return err
	}
	if err := e10Motivations(); err != nil {
		return err
	}
	if err := e11MultiCal(); err != nil {
		return err
	}
	return nil
}

func header(id, title string) {
	fmt.Printf("\n==== %s: %s ====\n", id, title)
}

// sys1993 opens a system anchored at Jan 1 1993 so tick values match §3.1.
func sys1993() (*calsys.System, *calsys.VirtualClock, error) {
	clock := calsys.NewVirtualClock(0)
	s, err := calsys.Open(calsys.WithEpoch(calsys.MustDate(1993, 1, 1)), calsys.WithClock(clock))
	return s, clock, err
}

func e1AlgebraExamples() error {
	header("E1", "§3.1 worked algebra examples (1993-anchored day ticks)")
	s, _, err := sys1993()
	if err != nil {
		return err
	}
	jan1, dec31 := calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 12, 31)

	cases := []struct{ label, expr, paper string }{
		{"WEEKS:during:Jan-1993", "WEEKS:during:interval(1, 31, DAYS)",
			"{(4,10),(11,17),(18,24),(25,31)}"},
		{"WEEKS:overlaps:Jan-1993", "WEEKS:overlaps:interval(1, 31, DAYS)",
			"{(1,3),(4,10),(11,17),(18,24),(25,31)}"},
		{"WEEKS.overlaps.Jan-1993", "WEEKS.overlaps.interval(1, 31, DAYS)",
			"{(-4,3),(4,10),(11,17),(18,24),(25,31)}"},
		{"[3]/WEEKS:overlaps:Jan-1993", "[3]/WEEKS:overlaps:interval(1, 31, DAYS)",
			"{(11,17)}"},
		{"[3]/WEEKS:overlaps:Year-1993 (3rd week of every month)", "[3]/WEEKS:overlaps:MONTHS",
			"{(11,17),(46,52),(74,80),(102,108),...}"},
	}
	for _, c := range cases {
		cal, err := s.EvalCalendar(c.expr, jan1, dec31)
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		fmt.Printf("  %-55s\n    paper:    %s\n    measured: %s\n", c.label, c.paper, cal.Flatten())
	}
	return nil
}

func e2GenerateCaloperate() error {
	header("E2", "§3.2 generate and caloperate")
	s, err := calsys.Open() // 1987 epoch, as in the paper's example
	if err != nil {
		return err
	}
	cal, err := s.EvalCalendar(`generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")`,
		calsys.MustDate(1987, 1, 1), calsys.MustDate(1992, 12, 31))
	if err != nil {
		return err
	}
	fmt.Println("  generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992])")
	fmt.Println("    paper:    {(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),(1827,1829)}")
	fmt.Printf("    measured: %s\n", cal)

	q, err := s.EvalCalendar(`caloperate(generate(MONTHS, DAYS, "Jan 1 1987", "Dec 31 1987"), 3)`,
		calsys.MustDate(1987, 1, 1), calsys.MustDate(1987, 12, 31))
	if err != nil {
		return err
	}
	fmt.Println("  QUARTERS = caloperate(MONTHS, *; 3)")
	fmt.Println("    paper:    {(1,90),(91,181),...}")
	fmt.Printf("    measured: %s\n", q)
	return nil
}

func e3Figure1() error {
	header("E3", "Figure 1: the CALENDARS catalog row for Tuesdays")
	s, err := calsys.Open()
	if err != nil {
		return err
	}
	if err := s.DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS", calsys.GranAuto); err != nil {
		return err
	}
	row, err := s.CalendarFigureRow("Tuesdays")
	if err != nil {
		return err
	}
	fmt.Print(row)
	cal, err := s.EvalCalendar("Tuesdays", calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 1, 31))
	if err != nil {
		return err
	}
	fmt.Printf("  Tuesdays over January 1993: %s\n", cal.Flatten())
	return nil
}

func e4e5Scripts() error {
	header("E4/E5", "§3.3 scripts: EMP-DAYS, option expiration, last trading day")
	s, clock, err := sys1993()
	if err != nil {
		return err
	}
	hol, err := calsys.PointCalendar(calsys.Day, 31, 90)
	if err != nil {
		return err
	}
	if err := s.DefineStoredCalendar("HOLIDAYS", hol); err != nil {
		return err
	}
	var bus []calsys.Tick
	for d := calsys.Tick(1); d <= 150; d++ {
		if d == 31 || d == 89 || d == 90 {
			continue
		}
		bus = append(bus, d)
	}
	busCal, err := calsys.PointCalendar(calsys.Day, bus...)
	if err != nil {
		return err
	}
	if err := s.DefineStoredCalendar("AM_BUS_DAYS", busCal); err != nil {
		return err
	}

	v, err := s.RunCalendarScript(`{LDOM = [n]/DAYS:during:MONTHS;
		LDOM_HOL = LDOM:intersects:HOLIDAYS;
		LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
		return (LDOM - LDOM_HOL + LAST_BUS_DAY);}`,
		calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 4, 30))
	if err != nil {
		return err
	}
	fmt.Println("  EMP-DAYS")
	fmt.Println("    paper:    {(30,30),(59,59),(88,88),...}")
	fmt.Printf("    measured: %s\n", v.Cal)

	expiry, err := s.RunCalendarScript(`{Fridays = [5]/DAYS:during:WEEKS;
		temp1 = [3]/Fridays:overlaps:interval(1, 31, DAYS);
		if (temp1:intersects:HOLIDAYS)
			return([n]/AM_BUS_DAYS:<:temp1);
		else
			return(temp1);}`,
		calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 1, 31))
	if err != nil {
		return err
	}
	fmt.Println("  option expiration (3rd Friday of January 1993, a business day)")
	fmt.Printf("    measured: %s (Jan 15 1993)\n", expiry.Cal)

	// Last trading day: wait under the virtual clock until the alert fires.
	clock.Set(s.SecondsOf(calsys.MustDate(1993, 1, 18)))
	waits := 0
	alert, err := s.RunCalendarScriptWithWait(`{ temp1 = [n]/AM_BUS_DAYS:during:interval(1, 31, DAYS);
		temp2 = [-7]/AM_BUS_DAYS:<:temp1;
		while (today:<:temp2) ;
		return ("LAST TRADING DAY");}`,
		calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 1, 31),
		func() error {
			waits++
			clock.Advance(calsys.SecondsPerDay)
			return nil
		})
	if err != nil {
		return err
	}
	fmt.Printf("  last trading day: waited %d days from Jan 18, alert %q on %s\n",
		waits, alert.Str, s.Today())
	return nil
}

func e6e7ParseTrees() error {
	header("E6/E7", "Figures 2-3: parse trees, initial vs factorized")
	s, _, err := sys1993()
	if err != nil {
		return err
	}
	if err := s.DefineCalendar("Mondays", "[1]/DAYS:during:WEEKS", calsys.GranAuto); err != nil {
		return err
	}
	if err := s.DefineCalendar("Januarys", "[1]/MONTHS:during:YEARS", calsys.GranAuto); err != nil {
		return err
	}
	if err := s.DefineCalendar("Third_Weeks", "[3]/WEEKS:overlaps:MONTHS", calsys.GranAuto); err != nil {
		return err
	}
	for _, expr := range []string{
		"Mondays:during:Januarys:during:1993/YEARS",
		"Third_Weeks:during:Januarys:during:1993/YEARS",
	} {
		initial, factored, err := s.ParseTree(expr)
		if err != nil {
			return err
		}
		ni, nf := lines(initial), lines(factored)
		fmt.Printf("  %s\n", expr)
		fmt.Printf("  INITIAL (%d nodes)\n%s", ni, indent(initial, "    "))
		fmt.Printf("  FACTORIZED (%d nodes)\n%s", nf, indent(factored, "    "))
	}
	return nil
}

func e8Windows() error {
	header("E8", "§3.4 window inference: generation cost, on vs off")
	s, _, err := sys1993()
	if err != nil {
		return err
	}
	if err := s.DefineCalendar("Mondays", "[1]/DAYS:during:WEEKS", calsys.GranAuto); err != nil {
		return err
	}
	if err := s.DefineCalendar("Januarys", "[1]/MONTHS:during:YEARS", calsys.GranAuto); err != nil {
		return err
	}
	expr := "Mondays:during:Januarys:during:1993/YEARS"
	for _, years := range []int{1, 4, 16, 64} {
		costOn, costOff, err := s.WindowCosts(expr,
			calsys.MustDate(1993, 1, 1), calsys.MustDate(1993+years-1, 12, 31))
		if err != nil {
			return err
		}
		fmt.Printf("  base window %3d years: generated ticks windowed=%-8d unwindowed=%-8d (%.1fx)\n",
			years, costOn, costOff, float64(costOff)/float64(costOn))
	}
	return nil
}

func e9DBCron() error {
	header("E9", "Figure 4: DBCRON probe/fire over a year of virtual time")
	for _, nRules := range []int{1, 10, 100} {
		s, clock, err := sys1993()
		if err != nil {
			return err
		}
		fired := 0
		for i := 0; i < nRules; i++ {
			name := fmt.Sprintf("r%d", i)
			weekday := i%5 + 1
			expr := fmt.Sprintf("[%d]/DAYS:during:WEEKS", weekday)
			if err := s.OnCalendar(name, expr, func(tx *calsys.Txn, at int64) error {
				fired++
				return nil
			}); err != nil {
				return err
			}
		}
		cron, err := s.StartDBCron(calsys.SecondsPerDay)
		if err != nil {
			return err
		}
		for d := 0; d < 365; d++ {
			if _, err := cron.AdvanceTo(clock.Advance(calsys.SecondsPerDay)); err != nil {
				return err
			}
		}
		total, late := cron.Stats()
		fmt.Printf("  %4d rules, T=1d, 365 virtual days: %6d firings (%d observed), lateness %ds\n",
			nRules, total, fired, late)
	}
	return nil
}

func e10Motivations() error {
	header("E10", "§1 motivations: GNP series, 30/360 arithmetic")
	s, err := calsys.Open()
	if err != nil {
		return err
	}
	gnp, err := s.NewRegularSeries("GNP", "[n]/DAYS:during:caloperate(MONTHS, 3)",
		calsys.MustDate(1987, 1, 1))
	if err != nil {
		return err
	}
	gnp.Append(4612, 4674, 4755, 4832)
	obs, err := gnp.Observations()
	if err != nil {
		return err
	}
	fmt.Printf("  quarterly GNP valid times (generated): %s .. %s\n",
		s.CivilOfDayTick(obs[0].Span.Lo), s.CivilOfDayTick(obs[3].Span.Lo))

	a, b := calsys.MustDate(1993, 1, 1), calsys.MustDate(1994, 1, 1)
	fmt.Printf("  days 1993-01-01 -> 1994-01-01: 30/360 = %d, actual = %d\n",
		calsys.Thirty360.Days(a, b), calsys.ActualActual.Days(a, b))
	return nil
}

func e11MultiCal() error {
	header("E11", "§5 comparison: the MultiCal baseline")
	ch := chronology.MustNew(chronology.DefaultEpoch)
	g := multical.Gregorian{Chron: ch}
	fc := multical.Fiscal{Chron: ch}
	e, err := g.FromFields(multical.FieldSet{"year": 1993, "month": 11, "day": 5})
	if err != nil {
		return err
	}
	en, _ := multical.FormatEvent(g, multical.English, "%d %B %Y", e)
	de, _ := multical.FormatEvent(g, multical.German, "%d. %B %Y", e)
	fy, _ := multical.FormatEvent(fc, multical.English, "FY%f month %m", e)
	fmt.Printf("  one event, three renderings: %q / %q / %q\n", en, de, fy)
	fmt.Println("  (MultiCal's strengths: multiple division systems and languages for I/O)")

	// Where MultiCal has no answer: nested interval lists. The paper's
	// system expresses \"3rd Friday of every month\" in one line; MultiCal
	// users hand-code an event/span loop (see internal/multical tests and
	// BenchmarkMultiCalBaselineThirdFridays).
	sys, err := calsys.Open()
	if err != nil {
		return err
	}
	cal, err := sys.EvalCalendar("[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS",
		calsys.MustDate(1993, 1, 1), calsys.MustDate(1993, 3, 31))
	if err != nil {
		return err
	}
	fmt.Print("  third Fridays (one algebra expression): ")
	for i, iv := range cal.Flatten().Intervals() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(sys.CivilOfDayTick(iv.Lo))
	}
	fmt.Println()
	return nil
}
