package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestInlineClean(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "[2]/DAYS:during:WEEKS")
	if code != 0 || out != "" {
		t.Errorf("clean source: code=%d out=%q", code, out)
	}
}

func TestInlineUndefinedReference(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "NOPE:during:MONTHS")
	if code != 1 {
		t.Errorf("code = %d, want 1", code)
	}
	for _, want := range []string{"<arg>:1:1:", "error CV001", `"NOPE"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKnownKindsFlag(t *testing.T) {
	code, out, _ := runCapture(t, "-k", "Mondays=DAYS", "-e", "Mondays:during:MONTHS")
	if code != 0 {
		t.Errorf("declared calendar should vet clean, got code %d:\n%s", code, out)
	}
	code, _, errb := runCapture(t, "-k", "bogus", "-e", "DAYS")
	if code != 2 || !strings.Contains(errb, "NAME=GRANULARITY") {
		t.Errorf("malformed -k: code=%d err=%q", code, errb)
	}
}

func TestStrictTreatsWarningsAsErrors(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "[8]/DAYS:during:WEEKS")
	if code != 0 || !strings.Contains(out, "warning CV012") {
		t.Errorf("warnings alone should exit 0: code=%d\n%s", code, out)
	}
	code, _, _ = runCapture(t, "-strict", "-e", "[8]/DAYS:during:WEEKS")
	if code != 1 {
		t.Errorf("-strict should fail on warnings, got %d", code)
	}
}

func TestFileVetting(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "Tuesdays.cal")
	if err := os.WriteFile(good, []byte("[2]/DAYS:during:WEEKS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The file's base name is the calendar being defined: a self-reference
	// is a cycle, not an undefined name.
	loopy := filepath.Join(dir, "LOOPY.cal")
	if err := os.WriteFile(loopy, []byte("LOOPY:during:MONTHS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCapture(t, good, loopy)
	if code != 1 {
		t.Errorf("code = %d, want 1", code)
	}
	if strings.Contains(out, "Tuesdays.cal") {
		t.Errorf("clean file should print nothing:\n%s", out)
	}
	for _, want := range []string{loopy + ":1:1:", "error CV002", "LOOPY → LOOPY"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	code, _, errb := runCapture(t, filepath.Join(dir, "missing.cal"))
	if code != 2 || errb == "" {
		t.Errorf("missing file: code=%d err=%q", code, errb)
	}
}

func TestParseFailureIsDiagnostic(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "DAYS:during:")
	if code != 1 || !strings.Contains(out, "error PARSE") {
		t.Errorf("parse failure: code=%d\n%s", code, out)
	}
}

func TestUsage(t *testing.T) {
	code, _, errb := runCapture(t)
	if code != 2 || !strings.Contains(errb, "usage") {
		t.Errorf("no-args: code=%d err=%q", code, errb)
	}
}

// A small fleet manifest: equivalent spellings group, diagnostics are
// positioned per definition, comments and blank lines are skipped.
func TestFleetManifest(t *testing.T) {
	manifest := `# fleet manifest
Mondays = [1]/DAYS:during:WEEKS
WeekStarts = [1]/DAYS.during.WEEKS
MondayAlias = Mondays
Tuesdays = [2]/DAYS:during:WEEKS
Never = DAYS - DAYS
Broken = ][
`
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.rules")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCapture(t, "-fleet", path)
	if code != 1 {
		t.Errorf("code = %d, want 1 (parse error in manifest):\n%s", code, out)
	}
	for _, want := range []string{
		path + ":6:Never: 1:6: warning CV010: calendar expression is provably empty on every window",
		path + ":7: error PARSE:",
		path + ": MondayAlias, Mondays, WeekStarts denote identical calendars; keep one and alias the rest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Tuesdays denote") {
		t.Errorf("Tuesdays wrongly grouped:\n%s", out)
	}
}

// The acceptance bar: a synthetic 10k-definition fleet with planted
// duplicate groups reports exactly the planted groups — no misses, no
// false merges — in one linear pass.
func TestFleetTenThousandRules(t *testing.T) {
	var b strings.Builder
	b.WriteString("# synthetic fleet\n")
	// Planted duplicates: distinct spellings of the same element lists.
	b.WriteString("eu_close_a = [18]/HOURS:during:DAYS\n")
	b.WriteString("eu_close_b = [18]/HOURS.during.DAYS\n")
	b.WriteString("us_open_a = [9,10]/HOURS:during:DAYS\n")
	b.WriteString("us_open_b = [9,10]/HOURS.during.DAYS\n")
	b.WriteString("us_open_c = us_open_a\n")
	// Filler: pairwise-distinct hour subsets of size 3 and 4 — every one
	// lowers symbolically, none equivalent to any other.
	n := 5
	for a := 1; a <= 24 && n < 10000; a++ {
		for bb := a + 1; bb <= 24 && n < 10000; bb++ {
			for c := bb + 1; c <= 24 && n < 10000; c++ {
				fmt.Fprintf(&b, "r_%d = [%d,%d,%d]/HOURS:during:DAYS\n", n, a, bb, c)
				n++
				for d := c + 1; d <= 24 && n < 10000; d++ {
					fmt.Fprintf(&b, "r_%d = [%d,%d,%d,%d]/HOURS:during:DAYS\n", n, a, bb, c, d)
					n++
				}
			}
		}
	}
	if n < 10000 {
		t.Fatalf("generator exhausted at %d definitions", n)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet10k.rules")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCapture(t, "-fleet", path)
	if code != 0 {
		t.Fatalf("code = %d:\n%s%s", code, out, errb)
	}
	want := path + ": eu_close_a, eu_close_b denote identical calendars; keep one and alias the rest\n" +
		path + ": us_open_a, us_open_b, us_open_c denote identical calendars; keep one and alias the rest\n"
	if out != want {
		t.Errorf("fleet output diverges from the planted groups.\nwant:\n%s\ngot:\n%s", want, out)
	}
}
