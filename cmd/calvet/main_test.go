package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestInlineClean(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "[2]/DAYS:during:WEEKS")
	if code != 0 || out != "" {
		t.Errorf("clean source: code=%d out=%q", code, out)
	}
}

func TestInlineUndefinedReference(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "NOPE:during:MONTHS")
	if code != 1 {
		t.Errorf("code = %d, want 1", code)
	}
	for _, want := range []string{"<arg>:1:1:", "error CV001", `"NOPE"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKnownKindsFlag(t *testing.T) {
	code, out, _ := runCapture(t, "-k", "Mondays=DAYS", "-e", "Mondays:during:MONTHS")
	if code != 0 {
		t.Errorf("declared calendar should vet clean, got code %d:\n%s", code, out)
	}
	code, _, errb := runCapture(t, "-k", "bogus", "-e", "DAYS")
	if code != 2 || !strings.Contains(errb, "NAME=GRANULARITY") {
		t.Errorf("malformed -k: code=%d err=%q", code, errb)
	}
}

func TestStrictTreatsWarningsAsErrors(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "[8]/DAYS:during:WEEKS")
	if code != 0 || !strings.Contains(out, "warning CV005") {
		t.Errorf("warnings alone should exit 0: code=%d\n%s", code, out)
	}
	code, _, _ = runCapture(t, "-strict", "-e", "[8]/DAYS:during:WEEKS")
	if code != 1 {
		t.Errorf("-strict should fail on warnings, got %d", code)
	}
}

func TestFileVetting(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "Tuesdays.cal")
	if err := os.WriteFile(good, []byte("[2]/DAYS:during:WEEKS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The file's base name is the calendar being defined: a self-reference
	// is a cycle, not an undefined name.
	loopy := filepath.Join(dir, "LOOPY.cal")
	if err := os.WriteFile(loopy, []byte("LOOPY:during:MONTHS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCapture(t, good, loopy)
	if code != 1 {
		t.Errorf("code = %d, want 1", code)
	}
	if strings.Contains(out, "Tuesdays.cal") {
		t.Errorf("clean file should print nothing:\n%s", out)
	}
	for _, want := range []string{loopy + ":1:1:", "error CV002", "LOOPY → LOOPY"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	code, _, errb := runCapture(t, filepath.Join(dir, "missing.cal"))
	if code != 2 || errb == "" {
		t.Errorf("missing file: code=%d err=%q", code, errb)
	}
}

func TestParseFailureIsDiagnostic(t *testing.T) {
	code, out, _ := runCapture(t, "-e", "DAYS:during:")
	if code != 1 || !strings.Contains(out, "error PARSE") {
		t.Errorf("parse failure: code=%d\n%s", code, out)
	}
}

func TestUsage(t *testing.T) {
	code, _, errb := runCapture(t)
	if code != 2 || !strings.Contains(errb, "usage") {
		t.Errorf("no-args: code=%d err=%q", code, errb)
	}
}
