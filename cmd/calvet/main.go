// Command calvet statically analyzes calendar expression language sources
// and reports positioned CV001-CV009 diagnostics, for use in CI pipelines
// and editors:
//
//	calvet [-strict] [-k NAME=GRAN]... [-e SOURCE] [file.cal ...]
//
// Each file holds one derivation (a bare expression or a {...} script); the
// file's base name (without extension) is taken as the calendar name being
// defined, so self-references are reported as cycles. Diagnostics print as
//
//	path:line:col: severity CVnnn: message
//
// calvet exits 1 when any error-severity diagnostic is reported (with
// -strict, when any diagnostic at all is), 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"calsys/internal/chronology"
	calvet "calsys/internal/core/callang/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		strict = fs.Bool("strict", false, "treat warnings as errors")
		inline = fs.String("e", "", "vet this source instead of files")
		name   = fs.String("name", "", "calendar name being defined (self-reference detection); for files the base name is used")
	)
	kinds := map[string]chronology.Granularity{}
	fs.Func("k", "declare a known calendar as NAME=GRANULARITY (repeatable)", func(s string) error {
		n, g, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want NAME=GRANULARITY, got %q", s)
		}
		gran, err := chronology.ParseGranularity(strings.TrimSpace(g))
		if err != nil {
			return err
		}
		kinds[strings.TrimSpace(n)] = gran
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *inline == "" && fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: calvet [-strict] [-k NAME=GRAN]... [-e SOURCE] [file ...]")
		return 2
	}
	cat := &calvet.MapCatalog{Kinds: kinds}

	exit := 0
	vetOne := func(label, self, src string) {
		ds := calvet.ParseAndAnalyze(src, cat, calvet.Options{SelfName: self})
		for _, d := range ds {
			fmt.Fprintf(stdout, "%s:%s\n", label, d.String())
			if d.Severity == calvet.Error || *strict {
				exit = 1
			}
		}
	}
	if *inline != "" {
		vetOne("<arg>", *name, *inline)
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "calvet:", err)
			return 2
		}
		self := *name
		if self == "" {
			base := filepath.Base(path)
			self = strings.TrimSuffix(base, filepath.Ext(base))
		}
		vetOne(path, self, strings.TrimSpace(string(data)))
	}
	return exit
}
