// Command calvet statically analyzes calendar expression language sources
// and reports positioned CV001-CV013 diagnostics, for use in CI pipelines
// and editors:
//
//	calvet [-strict] [-k NAME=GRAN]... [-e SOURCE] [file.cal ...]
//	calvet -fleet [-strict] [-k NAME=GRAN]... manifest ...
//
// Each file holds one derivation (a bare expression or a {...} script); the
// file's base name (without extension) is taken as the calendar name being
// defined, so self-references are reported as cycles. Diagnostics print as
//
//	path:line:col: severity CVnnn: message
//
// With -fleet each file is a catalog manifest — one `NAME = EXPRESSION`
// definition per line, `#` comments — and calvet additionally runs the
// fleet-wide equivalence analysis: every definition the symbolic calculus
// can lower is canonicalized, and groups denoting identical calendars are
// reported as merge candidates.
//
// calvet exits 1 when any error-severity diagnostic is reported (with
// -strict, when any diagnostic or equivalence group at all is), 2 on usage
// or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"calsys/internal/chronology"
	"calsys/internal/core/callang"
	calvet "calsys/internal/core/callang/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		strict = fs.Bool("strict", false, "treat warnings as errors")
		inline = fs.String("e", "", "vet this source instead of files")
		name   = fs.String("name", "", "calendar name being defined (self-reference detection); for files the base name is used")
		fleet  = fs.Bool("fleet", false, "files are fleet manifests (NAME = EXPRESSION lines); adds catalog-wide equivalence analysis")
	)
	kinds := map[string]chronology.Granularity{}
	fs.Func("k", "declare a known calendar as NAME=GRANULARITY (repeatable)", func(s string) error {
		n, g, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want NAME=GRANULARITY, got %q", s)
		}
		gran, err := chronology.ParseGranularity(strings.TrimSpace(g))
		if err != nil {
			return err
		}
		kinds[strings.TrimSpace(n)] = gran
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *inline == "" && fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: calvet [-strict] [-fleet] [-k NAME=GRAN]... [-e SOURCE] [file ...]")
		return 2
	}
	if *fleet {
		if *inline != "" {
			fmt.Fprintln(stderr, "calvet: -fleet takes manifest files, not -e")
			return 2
		}
		exit := 0
		for _, path := range fs.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(stderr, "calvet:", err)
				return 2
			}
			if code := vetFleet(path, string(data), kinds, stdout, *strict); code > exit {
				exit = code
			}
		}
		return exit
	}
	cat := &calvet.MapCatalog{Kinds: kinds}

	exit := 0
	vetOne := func(label, self, src string) {
		ds := calvet.ParseAndAnalyze(src, cat, calvet.Options{SelfName: self})
		for _, d := range ds {
			fmt.Fprintf(stdout, "%s:%s\n", label, d.String())
			if d.Severity == calvet.Error || *strict {
				exit = 1
			}
		}
	}
	if *inline != "" {
		vetOne("<arg>", *name, *inline)
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "calvet:", err)
			return 2
		}
		self := *name
		if self == "" {
			base := filepath.Base(path)
			self = strings.TrimSuffix(base, filepath.Ext(base))
		}
		vetOne(path, self, strings.TrimSpace(string(data)))
	}
	return exit
}

// fleetDefs exposes a manifest catalog for per-definition vetting without
// the NameLister extension: per-definition equivalence (CV011) would re-key
// the whole catalog for every definition — quadratic over a 10k-rule fleet —
// so equivalence is reported once, linearly, by AnalyzeCatalog below.
type fleetDefs struct{ m *calvet.MapCatalog }

func (c fleetDefs) DerivationOf(name string) (*callang.Script, bool) { return c.m.DerivationOf(name) }
func (c fleetDefs) ElemKindOf(name string) (chronology.Granularity, bool) {
	return c.m.ElemKindOf(name)
}

// vetFleet analyzes one manifest: per-definition positioned diagnostics,
// then the catalog-wide equivalence classes.
func vetFleet(label, data string, base map[string]chronology.Granularity, stdout io.Writer, strict bool) int {
	cat := &calvet.MapCatalog{
		Scripts: map[string]*callang.Script{},
		Kinds:   map[string]chronology.Granularity{},
	}
	for n, g := range base {
		cat.Kinds[n] = g
	}
	type def struct {
		name, src string
		line      int
		script    *callang.Script
	}
	var defs []def
	exit := 0
	for i, raw := range strings.Split(data, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, src, ok := strings.Cut(line, "=")
		name, src = strings.TrimSpace(name), strings.TrimSpace(src)
		if !ok || name == "" || src == "" {
			fmt.Fprintf(stdout, "%s:%d: error MANIFEST: want NAME = EXPRESSION, got %q\n", label, i+1, line)
			exit = 1
			continue
		}
		if _, dup := cat.Scripts[name]; dup {
			fmt.Fprintf(stdout, "%s:%d: error MANIFEST: duplicate definition of %q\n", label, i+1, name)
			exit = 1
			continue
		}
		s, err := callang.ParseDerivation(src)
		if err != nil {
			fmt.Fprintf(stdout, "%s:%d: error PARSE: %v\n", label, i+1, err)
			exit = 1
			continue
		}
		cat.Scripts[name] = s
		defs = append(defs, def{name, src, i + 1, s})
	}
	// Element kinds are inferred from each definition's finest referenced
	// unit; a few rounds propagate kinds through reference chains.
	for round := 0; round < 5; round++ {
		for _, d := range defs {
			cat.Kinds[d.name] = callang.AnalyzeScript(d.script, cat).TickGran
		}
	}

	for _, d := range defs {
		ds := calvet.AnalyzeScript(d.script, fleetDefs{cat}, calvet.Options{SelfName: d.name})
		for _, diag := range ds {
			fmt.Fprintf(stdout, "%s:%d:%s: %s\n", label, d.line, d.name, diag.String())
			if diag.Severity == calvet.Error || strict {
				exit = 1
			}
		}
	}
	for _, class := range calvet.AnalyzeCatalog(cat, calvet.Options{}) {
		fmt.Fprintf(stdout, "%s: %s\n", label, class.String())
		if strict {
			exit = 1
		}
	}
	return exit
}
