package calsys

import (
	"calsys/internal/caldb"
	"calsys/internal/chronology"
	"calsys/internal/core/calendar"
	calvet "calsys/internal/core/callang/vet"
	"calsys/internal/core/interval"
	"calsys/internal/core/matcache"
	"calsys/internal/core/plan"
	"calsys/internal/datearith"
	"calsys/internal/faultinject"
	"calsys/internal/postquel"
	"calsys/internal/rules"
	"calsys/internal/rules/journal"
	"calsys/internal/rules/shard"
	"calsys/internal/store"
	"calsys/internal/timeseries"
)

// Re-exported core types, so users of the library never import internal
// packages directly.
type (
	// Civil is a proleptic Gregorian calendar date.
	Civil = chronology.Civil
	// Weekday numbers days Monday=1..Sunday=7, as in the paper.
	Weekday = chronology.Weekday
	// Granularity names a basic calendar (SECONDS .. CENTURY).
	Granularity = chronology.Granularity
	// Tick is a no-zero unit count from the system start date.
	Tick = chronology.Tick
	// Chronology anchors the basic calendars at a system start date.
	Chronology = chronology.Chronology

	// Interval is a closed tick span (lo,hi).
	Interval = interval.Interval
	// ListOp is one of the paper's interval operators (overlaps, during,
	// meets, <, <=).
	ListOp = interval.ListOp
	// Calendar is an order-n structured collection of intervals.
	Calendar = calendar.Calendar
	// Selection is the [x]/C selection predicate.
	Selection = calendar.Selection

	// Plan is a compiled calendar-expression evaluation plan.
	Plan = plan.Plan
	// ScriptValue is the result of a calendar script: a calendar or an
	// alert string.
	ScriptValue = plan.Value
	// EvalEnv is the evaluation environment (chronology, catalog, clock).
	EvalEnv = plan.Env

	// CalendarEntry is a decoded CALENDARS catalog tuple (Figure 1).
	CalendarEntry = caldb.Entry
	// Lifespan is a calendar's validity range in day ticks.
	Lifespan = caldb.Lifespan
	// VetDiag is one positioned diagnostic from the calvet static analyzer.
	VetDiag = calvet.Diag
	// VetDiags is a position-sorted diagnostic list.
	VetDiags = calvet.Diags
	// VetSeverity grades a vet diagnostic (warning or error).
	VetSeverity = calvet.Severity
	// CalendarEquivClass is one group of catalog definitions the symbolic
	// calculus proved to denote identical element lists.
	CalendarEquivClass = calvet.EquivClass
	// RuleMergeGroup is one group of temporal rules firing on identical
	// instants (the fleet-wide dedup diagnostic).
	RuleMergeGroup = rules.MergeGroup
	// MatCacheStats snapshots the shared materialization cache's counters.
	MatCacheStats = matcache.Stats

	// DB is the extensible database substrate.
	DB = store.DB
	// Value is a typed cell value.
	Value = store.Value
	// Row is one tuple.
	Row = store.Row
	// Schema describes a relation.
	Schema = store.Schema
	// Column is one attribute of a relation.
	Column = store.Column
	// Txn is a serializable transaction.
	Txn = store.Txn
	// Event is a database operation delivered to rules.
	Event = store.Event
	// EventOp is the operation kind (append/delete/replace/retrieve).
	EventOp = store.EventOp
	// UserFunc is a user-defined database function.
	UserFunc = store.UserFunc

	// RuleAction is what a rule does when it triggers.
	RuleAction = rules.Action
	// FuncAction wraps a Go callback as a rule action.
	FuncAction = rules.FuncAction
	// TemporalRuleDef is one rule of a batch define (System.OnCalendars).
	TemporalRuleDef = rules.TemporalRuleDef
	// RuleEngine owns RULE-INFO / RULE-TIME and dispatches rules.
	RuleEngine = rules.Engine
	// DBCron is the daemon of Figure 4.
	DBCron = rules.DBCron
	// Firing is one scheduled rule activation.
	Firing = rules.Firing
	// Clock supplies the current instant in epoch seconds.
	Clock = rules.Clock
	// VirtualClock is a manually advanced clock.
	VirtualClock = rules.VirtualClock
	// SystemClock maps wall time onto model seconds from an anchor.
	SystemClock = rules.SystemClock

	// CronOptions configures a durable DBCRON daemon.
	CronOptions = rules.CronOptions
	// CronStats is the daemon's full counter snapshot.
	CronStats = rules.CronStats
	// RetryPolicy bounds retry with exponential backoff for failing actions.
	RetryPolicy = rules.RetryPolicy
	// CatchUpPolicy selects crash-recovery semantics for missed triggers.
	CatchUpPolicy = rules.CatchUpPolicy
	// RecoveryReport summarizes a crash recovery pass.
	RecoveryReport = rules.RecoveryReport
	// DeadLetter is one permanently failed firing from RULE-DEADLETTER.
	DeadLetter = rules.DeadLetter
	// FiringJournal is the write-ahead firing journal backing crash recovery.
	FiringJournal = journal.Journal
	// JournalOption configures OpenFiringJournal.
	JournalOption = journal.Option
	// FaultInjector is the deterministic fault-injection harness (tests).
	FaultInjector = faultinject.Injector

	// ShardCoordinator is the lease table of a sharded DBCRON fleet.
	ShardCoordinator = shard.Coordinator
	// ShardWorker is one dbcrond process of a sharded fleet.
	ShardWorker = shard.Worker
	// ShardWorkerOptions configures a fleet worker's per-shard daemons.
	ShardWorkerOptions = shard.Options
	// ShardWorkerStats is a fleet worker's lifetime counter snapshot.
	ShardWorkerStats = shard.WorkerStats
	// ShardLease is one shard's epoch-fenced ownership record.
	ShardLease = shard.Lease

	// QueryEngine executes Postquel statements.
	QueryEngine = postquel.Engine
	// QueryResult is the outcome of one statement.
	QueryResult = postquel.Result

	// DayCount is a day-count convention (30/360, actual/365, ...).
	DayCount = datearith.Convention
	// Bond is a fixed-coupon bond priced under a day-count convention.
	Bond = datearith.Bond

	// RegularSeries is a time series whose valid time is generated from a
	// calendar expression.
	RegularSeries = timeseries.Regular
	// Observation is one (span, value) pair of a regular series.
	Observation = timeseries.Obs
	// SeriesPattern is a predicate over consecutive series values.
	SeriesPattern = timeseries.Pattern
)

// Basic granularities, finest to coarsest.
const (
	Second  = chronology.Second
	Minute  = chronology.Minute
	Hour    = chronology.Hour
	Day     = chronology.Day
	Week    = chronology.Week
	Month   = chronology.Month
	Year    = chronology.Year
	Decade  = chronology.Decade
	Century = chronology.Century
)

// Weekdays (Monday = 1, per the paper).
const (
	Monday    = chronology.Monday
	Tuesday   = chronology.Tuesday
	Wednesday = chronology.Wednesday
	Thursday  = chronology.Thursday
	Friday    = chronology.Friday
	Saturday  = chronology.Saturday
	Sunday    = chronology.Sunday
)

// The five listops of §3.1.
const (
	Overlaps     = interval.Overlaps
	During       = interval.During
	Meets        = interval.Meets
	Before       = interval.Before
	BeforeEquals = interval.BeforeEquals
)

// Column types of the extensible store.
const (
	TInt      = store.TInt
	TFloat    = store.TFloat
	TText     = store.TText
	TBool     = store.TBool
	TDate     = store.TDate
	TInterval = store.TInterval
	TCalendar = store.TCalendar
)

// Database event kinds.
const (
	EvAppend   = store.EvAppend
	EvDelete   = store.EvDelete
	EvReplace  = store.EvReplace
	EvRetrieve = store.EvRetrieve
)

// GranAuto asks DefineCalendar to infer granularity from the derivation.
const GranAuto = caldb.GranAuto

// Vet diagnostic severities.
const (
	VetWarning = calvet.Warning
	VetError   = calvet.Error
)

// MaxDayTick stands in for an unbounded lifespan upper bound.
const MaxDayTick = caldb.MaxDayTick

// SecondsPerDay is the length of a civil day.
const SecondsPerDay = chronology.SecondsPerDay

// Day-count conventions for user-defined date arithmetic (§1).
var (
	ActualActual      DayCount = datearith.ActualActual{}
	Actual365         DayCount = datearith.Actual365{}
	Actual360         DayCount = datearith.Actual360{}
	Thirty360         DayCount = datearith.Thirty360{}
	Thirty360European DayCount = datearith.Thirty360European{}
)

// Series patterns from the paper's future-work section.
var (
	PatternIncrease   = timeseries.Increase
	PatternDecrease   = timeseries.Decrease
	PatternTwoDayRise = timeseries.TwoDayRise
)

// Aggregation functions for RegularSeries.AggregateTo.
var (
	SeriesMean = timeseries.Mean
	SeriesSum  = timeseries.Sum
	SeriesLast = timeseries.Last
	SeriesMax  = timeseries.Max
)

// Value constructors.
var (
	NewInt      = store.NewInt
	NewFloat    = store.NewFloat
	NewText     = store.NewText
	NewBool     = store.NewBool
	NewDate     = store.NewDate
	NewInterval = store.NewInterval
	NewCalendar = store.NewCalendar
	Null        = store.Null
)

// Interval and selection constructors.
var (
	NewIval     = interval.New
	MustIval    = interval.Must
	SelectIndex = calendar.SelectIndex
	SelectLast  = calendar.SelectLast
	SelectList  = calendar.SelectList
	SelectRange = calendar.SelectRange
)

// Calendar constructors and algebra entry points.
var (
	CalendarFromIntervals = calendar.FromIntervals
	CalendarFromPoints    = calendar.FromPoints
	Foreach               = calendar.Foreach
	ForeachInterval       = calendar.ForeachInterval
	SelectFrom            = calendar.Select
	CalUnion              = calendar.Union
	CalDiff               = calendar.Diff
	CalIntersect          = calendar.Intersect
	Generate              = calendar.Generate
	GenerateCivil         = calendar.GenerateCivil
	Caloperate            = calendar.Caloperate
)

// Chronology and parsing helpers.
var (
	ParseDate        = chronology.ParseCivil
	ParseGranularity = chronology.ParseGranularity
	DayCountByName   = datearith.ByName
	AddMonths        = datearith.AddMonths
	CouponSchedule   = datearith.CouponSchedule
	NewVirtualClock  = rules.NewVirtualClock
)

// Catch-up policies for crash recovery.
const (
	FireAll    = rules.FireAll
	FireLast   = rules.FireLast
	SkipMissed = rules.SkipMissed
)

// Durability constructors and helpers.
var (
	// OpenFiringJournal opens (or creates) a write-ahead firing journal,
	// replaying any prior records.
	OpenFiringJournal = journal.Open
	// JournalSync toggles fsync-on-commit (on by default).
	JournalSync = journal.WithSync
	// DefaultRetryPolicy is the retry schedule durable daemons adopt when
	// none is configured.
	DefaultRetryPolicy = rules.DefaultRetryPolicy
	// ParseCatchUpPolicy resolves "fireall" | "firelast" | "skip".
	ParseCatchUpPolicy = rules.ParseCatchUpPolicy
	// NewFaultInjector creates a seeded fault-injection harness.
	NewFaultInjector = faultinject.New
	// IsInjectedCrash reports whether an error is an injected kill point.
	IsInjectedCrash = faultinject.IsCrash

	// NewShardCoordinator creates the lease table for a sharded fleet.
	NewShardCoordinator = shard.NewCoordinator
	// NewShardWorker creates one fleet worker over a shared rule engine.
	NewShardWorker = shard.New
	// ShardOf maps a rule name to its shard (FNV-1a over the lowercased
	// name), the partition every fleet worker agrees on.
	ShardOf = rules.ShardOf
	// ErrFiringFenced marks a firing aborted by the lease fence: the
	// worker's epoch was stale, so the commit was refused.
	ErrFiringFenced = rules.ErrFenced
)

// Fault-injection sites: the daemon sites arm through CronOptions.Faults,
// the engine site through RuleEngine.SetFaults.
const (
	// SiteCronProbe kills the daemon at the top of a RULE-TIME probe.
	SiteCronProbe = rules.SiteProbe
	// SiteCronAck kills the daemon after a firing commits but before its
	// journal ack — recovery must deduplicate, not re-execute.
	SiteCronAck = rules.SiteAck
	// SiteEngineFire kills the daemon inside the firing transaction, before
	// the action runs — the firing rolls back and recovery re-drives it.
	SiteEngineFire = rules.SiteFire
)
